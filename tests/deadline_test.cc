// Anytime search under deadlines: expiry forced at every fault point, on
// every engine kind, must yield valid partial answers (never garbage, never
// a crash), leave the pooled search state reusable, and deadline_ms = 0 must
// stay bit-identical to the unbounded path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

// ---------------------------------------------------------------------------
// Deadline unit behavior.

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_FALSE(d.enabled());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMs(), 1e18);
}

TEST(DeadlineTest, NonPositiveBudgetDisables) {
  EXPECT_FALSE(Deadline::AfterMs(0.0).enabled());
  EXPECT_FALSE(Deadline::AfterMs(-3.0).enabled());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  Deadline d = Deadline::AfterMs(10000.0);
  EXPECT_TRUE(d.enabled());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMs(), 0.0);
  EXPECT_LE(d.RemainingMs(), 10000.0);
}

TEST(DeadlineTest, ExpiresAfterSleep) {
  Deadline d = Deadline::AfterMs(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0.0);
}

TEST(DeadlineTest, SubBudgetProperties) {
  // Unlimited stays unlimited.
  EXPECT_FALSE(Deadline().SubBudget(0.5).enabled());
  // A fraction of a live budget expires no later than the whole.
  Deadline whole = Deadline::AfterMs(10000.0);
  Deadline part = whole.SubBudget(0.25);
  EXPECT_TRUE(part.enabled());
  EXPECT_LE(part.RemainingMs(), whole.RemainingMs());
  // Degenerate fractions clamp to [now, whole].
  EXPECT_LE(whole.SubBudget(10.0).RemainingMs(), whole.RemainingMs());
  EXPECT_TRUE(whole.SubBudget(0.0).Expired() ||
              whole.SubBudget(0.0).RemainingMs() < 1.0);
}

// ---------------------------------------------------------------------------
// Engine-level behavior on a generated knowledge base.

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 800;
    cfg.num_summary_nodes = 5;
    cfg.num_topic_nodes = 12;
    cfg.num_communities = 6;
    cfg.vocab_size = 1200;
    cfg.seed = 7;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1000, 5);
    index = InvertedIndex::Build(kb.graph);
    // A query with matches in several communities so multiple BFS levels and
    // a non-trivial candidate set exist.
    query = {kb.meta.community_terms[0][0], kb.meta.community_terms[1][0]};
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
  std::vector<std::string> query;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

const EngineKind kAllEngines[] = {
    EngineKind::kSequential,
    EngineKind::kCpuParallel,
    EngineKind::kCpuDynamic,
    EngineKind::kGpuSim,
};

// Fault points on the lock-free (sequential / CPU-parallel / GPU-sim) path
// and on the dynamic engine's path.
const char* const kLockFreePoints[] = {
    "bottomup:level", "bottomup:identify", "bottomup:chunk",
    "stage:topdown", "topdown:candidate",
};
const char* const kDynamicPoints[] = {
    "dynamic:level", "dynamic:chunk", "dynamic:topdown",
};

void ExpectSameAnswers(const SearchResult& a, const SearchResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].central, b.answers[i].central) << label << " " << i;
    EXPECT_EQ(a.answers[i].nodes, b.answers[i].nodes) << label << " " << i;
    EXPECT_NEAR(a.answers[i].score, b.answers[i].score, 1e-9) << label;
  }
}

TEST(EngineDeadlineTest, ZeroDeadlineMatchesUnboundedRun) {
  Fixture& f = SharedFixture();
  for (EngineKind kind : kAllEngines) {
    SearchOptions opts;
    opts.top_k = 10;
    opts.threads = 4;
    opts.engine = kind;
    SearchEngine engine(&f.kb.graph, &f.index, opts);

    opts.deadline_ms = 0.0;
    auto unbounded = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
    EXPECT_FALSE(unbounded->stats.timed_out);
    EXPECT_FALSE(unbounded->stats.degraded);
    EXPECT_EQ(unbounded->stats.deadline_left_ms, -1.0);

    // A deadline far beyond the query's runtime must not perturb anything.
    opts.deadline_ms = 1e7;
    auto bounded = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(bounded.ok());
    EXPECT_FALSE(bounded->stats.timed_out);
    EXPECT_GE(bounded->stats.deadline_left_ms, 0.0);
    ExpectSameAnswers(*unbounded, *bounded, EngineKindName(kind));
  }
}

// Stalls past the deadline the first time `point` fires, forcing expiry to
// be observed at exactly that stage boundary.
SearchOptions StalledOptions(EngineKind kind, const char* point,
                             double deadline_ms, double stall_ms) {
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.engine = kind;
  opts.deadline_ms = deadline_ms;
  auto fired = std::make_shared<std::atomic<bool>>(false);
  std::string target = point;
  opts.fault_injection = [fired, target, stall_ms](const char* p) {
    if (target == p && !fired->exchange(true)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms));
    }
  };
  return opts;
}

void RunExpirySweep(EngineKind kind, const char* const* points,
                    size_t num_points) {
  Fixture& f = SharedFixture();
  for (size_t i = 0; i < num_points; ++i) {
    SCOPED_TRACE(std::string(EngineKindName(kind)) + " @ " + points[i]);
    SearchStatePool pool;
    SearchOptions opts = StalledOptions(kind, points[i], /*deadline_ms=*/5.0,
                                        /*stall_ms=*/25.0);
    SearchEngine engine(&f.kb.graph, &f.index, opts);
    engine.SetStatePool(&pool);

    auto res = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->stats.timed_out);
    EXPECT_TRUE(res->stats.degraded);
    EXPECT_GE(res->stats.deadline_left_ms, 0.0);
    for (const AnswerGraph& a : res->answers) {
      testing::CheckAnswerInvariants(f.kb.graph, a, res->keywords.size());
    }

    // The pooled state must be reusable after the aborted run: the same
    // engine, unbounded, must now reproduce a fresh engine's answers.
    SearchOptions clean = opts;
    clean.deadline_ms = 0.0;
    clean.fault_injection = nullptr;
    auto after = engine.SearchKeywords(f.query, clean);
    ASSERT_TRUE(after.ok());
    EXPECT_FALSE(after->stats.timed_out);

    SearchEngine fresh_engine(&f.kb.graph, &f.index, clean);
    auto fresh = fresh_engine.SearchKeywords(f.query, clean);
    ASSERT_TRUE(fresh.ok());
    ExpectSameAnswers(*fresh, *after, "post-timeout pooled rerun");
  }
}

TEST(EngineDeadlineTest, ExpiryAtEveryFaultPointSequential) {
  RunExpirySweep(EngineKind::kSequential, kLockFreePoints,
                 std::size(kLockFreePoints));
}

TEST(EngineDeadlineTest, ExpiryAtEveryFaultPointCpuParallel) {
  RunExpirySweep(EngineKind::kCpuParallel, kLockFreePoints,
                 std::size(kLockFreePoints));
}

TEST(EngineDeadlineTest, ExpiryAtEveryFaultPointGpuSim) {
  RunExpirySweep(EngineKind::kGpuSim, kLockFreePoints,
                 std::size(kLockFreePoints));
}

TEST(EngineDeadlineTest, ExpiryAtEveryFaultPointDynamic) {
  RunExpirySweep(EngineKind::kCpuDynamic, kDynamicPoints,
                 std::size(kDynamicPoints));
}

// The stage split must leave extraction a slice of the budget: when the
// bottom-up stage exhausts its sub-budget mid-search, centrals found in the
// completed levels still materialize into answers.
TEST(EngineDeadlineTest, ExtractionGetsBudgetSliceAfterBottomUpTimeout) {
  // Deterministic chain graph with an answer at level 1 (the pattern of
  // progressive_test): kw1 - mid - kw2, plus a long tail that keeps the
  // search running for more levels.
  GraphBuilder b;
  b.AddTriple("start alphaterm", "r", "join middle");
  b.AddTriple("join middle", "r", "end betaterm");
  std::string prev = "end betaterm";
  for (int i = 0; i < 8; ++i) {
    std::string next = "chain node " + std::to_string(i);
    b.AddTriple(prev, "r", next);
    prev = next;
  }
  b.AddTriple(prev, "r", "far alphaterm outpost");
  KnowledgeGraph graph = std::move(b).Build();
  AttachNodeWeights(&graph);
  AttachAverageDistance(&graph, 200, 3);
  InvertedIndex index = InvertedIndex::Build(graph);

  // Probe the first level whose identification yields centrals (activation
  // levels make this graph-dependent; the progress snapshot of level L
  // reports centrals identified through L). Stalling at the head of level
  // L+1 leaves those centrals fully identified for extraction.
  int central_level = -1;
  {
    SearchOptions probe;
    probe.top_k = 50;
    probe.engine = EngineKind::kSequential;
    SearchEngine probe_engine(&graph, &index, probe);
    auto r = probe_engine.SearchKeywordsProgressive(
        {"alphaterm", "betaterm"}, probe, [&](const LevelProgress& p) {
          if (central_level < 0 && p.centrals_so_far > 0) {
            central_level = p.level;
          }
          return true;
        });
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_GE(central_level, 0) << "query yields no centrals at all";
  }

  for (EngineKind kind : kAllEngines) {
    SCOPED_TRACE(EngineKindName(kind));
    SearchOptions opts;
    opts.top_k = 50;  // keep searching past the first answer
    opts.threads = 2;
    opts.engine = kind;
    // 20ms sub-budget for the search, plenty of headroom for extraction.
    opts.deadline_ms = 100.0;
    opts.bottom_up_budget_fraction = 0.2;
    // Stall the probed level past the sub-budget but well inside the total
    // budget: the centrals identified before it still have extraction time.
    auto calls = std::make_shared<std::atomic<int>>(0);
    const bool dynamic = kind == EngineKind::kCpuDynamic;
    std::string level_point = dynamic ? "dynamic:level" : "bottomup:level";
    opts.fault_injection = [calls, level_point, central_level](const char* p) {
      if (level_point == p && calls->fetch_add(1) == central_level + 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
      }
    };
    SearchEngine engine(&graph, &index, opts);
    auto res = engine.SearchKeywords({"alphaterm", "betaterm"}, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->stats.timed_out);
    EXPECT_FALSE(res->answers.empty());  // level-1 answer still materialized
    for (const AnswerGraph& a : res->answers) {
      testing::CheckAnswerInvariants(graph, a, res->keywords.size());
    }
  }
}

TEST(EngineDeadlineTest, StatsConsistency) {
  Fixture& f = SharedFixture();
  for (EngineKind kind : kAllEngines) {
    const bool dynamic = kind == EngineKind::kCpuDynamic;
    SearchOptions opts =
        StalledOptions(kind, dynamic ? "dynamic:level" : "bottomup:level",
                       /*deadline_ms=*/5.0, /*stall_ms=*/25.0);
    SearchEngine engine(&f.kb.graph, &f.index, opts);
    auto res = engine.SearchKeywords(f.query, opts);
    ASSERT_TRUE(res.ok());
    // timed_out implies degraded; completed levels never exceed reported
    // levels; a set deadline always reports non-negative slack.
    EXPECT_TRUE(res->stats.timed_out);
    EXPECT_TRUE(res->stats.degraded);
    EXPECT_LE(res->stats.levels_completed, res->stats.levels);
    EXPECT_GE(res->stats.deadline_left_ms, 0.0);
  }
}

}  // namespace
}  // namespace wikisearch
