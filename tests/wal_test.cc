// Durability-layer unit suite (DESIGN.md §12), bottom up: CRC32 vectors,
// the fsio helpers, WAL record encode/decode, segment append/read
// roundtrips, and — the load-bearing property — torn-tail recovery at EVERY
// byte offset of a valid log: truncating anywhere must yield a whole-batch
// prefix (never a partial batch), with a diagnostic when bytes were
// discarded. Plus manifest/CLEAN checksummed files and snapshot persistence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32.h"
#include "common/fsio.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "live/manifest.h"
#include "live/persist.h"
#include "live/wal.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace wikisearch {
namespace {

using live::DecodeBatch;
using live::EncodeBatch;
using live::FsyncPolicy;
using live::ListWalSegments;
using live::ReadWalFile;
using live::UpdateBatch;
using live::WalOptions;
using live::WalSegmentName;
using live::WalWriter;
using testing::TempDir;

// ---------------------------------------------------------------- crc32 --

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value — any table bug breaks this immediately.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t part = Crc32(data.data(), cut);
    part = Crc32(data.data() + cut, data.size() - cut, part);
    EXPECT_EQ(part, whole) << "cut at " << cut;
  }
}

// ----------------------------------------------------------------- fsio --

TEST(FsioTest, AtomicWriteRoundtrip) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  const std::string path = dir.File("config");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "hello\nworld\n");
  // Replacement is whole-file, and the temp never lingers.
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "v2");
  EXPECT_FALSE(PathExists(path + ".tmp"));
  auto size = FileSizeOf(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
}

TEST(FsioTest, MissingFilesAndDirs) {
  TempDir dir;
  std::string out;
  Status st = ReadFileToString(dir.File("absent"), &out);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_TRUE(RemoveFile(dir.File("absent")).ok());  // idempotent unlink
  EXPECT_TRUE(EnsureDir(dir.path()).ok());           // idempotent mkdir
  EXPECT_FALSE(PathExists(dir.File("absent")));
}

TEST(FsioTest, ListDirSortedAndDirName) {
  TempDir dir;
  ASSERT_TRUE(WriteFileAtomic(dir.File("bbb"), "1").ok());
  ASSERT_TRUE(WriteFileAtomic(dir.File("aaa"), "2").ok());
  ASSERT_TRUE(WriteFileAtomic(dir.File("ccc"), "3").ok());
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"aaa", "bbb", "ccc"}));
  EXPECT_EQ(DirName("/a/b/c"), "/a/b");
  EXPECT_EQ(DirName("plain"), ".");
}

TEST(FsioTest, TruncateFile) {
  TempDir dir;
  const std::string path = dir.File("t");
  ASSERT_TRUE(WriteFileAtomic(path, "0123456789").ok());
  ASSERT_TRUE(TruncateFile(path, 4).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "0123");
}

// ------------------------------------------------------- record framing --

UpdateBatch MakeBatch(int i) {
  UpdateBatch b;
  live::TripleOp add;
  add.subject = "subj" + std::to_string(i);
  add.predicate = "pred" + std::to_string(i % 3);
  add.object = "obj" + std::to_string(i * 7);
  b.add.push_back(add);
  if (i % 2 == 0) {
    live::TripleOp more;
    more.subject = "subj" + std::to_string(i);
    more.predicate = "linksTo";
    more.object = "hub";
    b.add.push_back(more);
  }
  if (i % 3 == 0) {
    live::TripleOp rm;
    rm.subject = "old" + std::to_string(i);
    rm.predicate = "pred0";
    rm.object = "gone";
    b.remove.push_back(rm);
  }
  if (i % 2 == 1) {
    live::TextOp t;
    t.node = "subj" + std::to_string(i);
    t.text = "extra searchable text " + std::to_string(i);
    b.text.push_back(t);
  }
  return b;
}

std::string Encoded(const UpdateBatch& b) {
  std::string out;
  EncodeBatch(b, &out);
  return out;
}

TEST(WalCodecTest, EncodeDecodeRoundtrip) {
  for (int i = 0; i < 8; ++i) {
    UpdateBatch in = MakeBatch(i);
    UpdateBatch out;
    ASSERT_TRUE(DecodeBatch(Encoded(in), &out).ok()) << "batch " << i;
    EXPECT_EQ(Encoded(out), Encoded(in)) << "batch " << i;
  }
  // Empty batch and embedded awkward bytes both survive.
  UpdateBatch empty, back;
  ASSERT_TRUE(DecodeBatch(Encoded(empty), &back).ok());
  EXPECT_EQ(Encoded(back), Encoded(empty));
  UpdateBatch odd;
  live::TextOp t;
  t.node = std::string("nul\0byte", 8);
  t.text = "tab\tnewline\n\"quote\"";
  odd.text.push_back(t);
  ASSERT_TRUE(DecodeBatch(Encoded(odd), &back).ok());
  EXPECT_EQ(Encoded(back), Encoded(odd));
}

TEST(WalCodecTest, DecodeRejectsTruncationAndTrailingGarbage) {
  std::string enc = Encoded(MakeBatch(4));
  UpdateBatch out;
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    Status st = DecodeBatch(std::string_view(enc.data(), cut), &out);
    EXPECT_FALSE(st.ok()) << "truncated to " << cut << " decoded";
  }
  Status st = DecodeBatch(enc + "x", &out);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(WalCodecTest, SegmentNamesSortNumerically) {
  EXPECT_EQ(WalSegmentName(1), "wal-00000000000000000001.log");
  EXPECT_LT(WalSegmentName(9), WalSegmentName(10));
  EXPECT_LT(WalSegmentName(99), WalSegmentName(100));
}

// ------------------------------------------------------------ WalWriter --

TEST(WalWriterTest, AppendReadRoundtrip) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kAlways;
  auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
  ASSERT_TRUE(wal.ok());
  const int kN = 5;
  for (int i = 1; i <= kN; ++i) {
    ASSERT_TRUE((*wal)->Append(i, MakeBatch(i)).ok());
    ASSERT_TRUE((*wal)->SyncTo(i).ok());
  }
  EXPECT_EQ((*wal)->written_seq(), 5u);
  EXPECT_EQ((*wal)->synced_seq(), 5u);
  EXPECT_EQ((*wal)->appends_total(), 5u);
  EXPECT_GT((*wal)->bytes_written(), 0u);
  wal->reset();

  auto read = ReadWalFile(dir.File(WalSegmentName(1)));
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->torn);
  ASSERT_EQ(read->records.size(), 5u);
  for (int i = 1; i <= kN; ++i) {
    EXPECT_EQ(read->records[i - 1].seq, static_cast<uint64_t>(i));
    EXPECT_EQ(Encoded(read->records[i - 1].batch), Encoded(MakeBatch(i)));
  }
}

TEST(WalWriterTest, GroupCommitSharesFsyncs) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kAlways;
  auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE((*wal)->Append(i, MakeBatch(i)).ok());
  }
  // One SyncTo covers every record appended before it...
  ASSERT_TRUE((*wal)->SyncTo(8).ok());
  uint64_t fsyncs = (*wal)->fsyncs_total();
  EXPECT_GE(fsyncs, 1u);
  // ...and later SyncTo calls for already-covered seqs are free.
  ASSERT_TRUE((*wal)->SyncTo(3).ok());
  ASSERT_TRUE((*wal)->SyncTo(8).ok());
  EXPECT_EQ((*wal)->fsyncs_total(), fsyncs);
  EXPECT_EQ((*wal)->synced_seq(), 8u);
}

TEST(WalWriterTest, NeverPolicySkipsAckFsyncButHonorsExplicitSync) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kNever;
  auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, MakeBatch(1)).ok());
  ASSERT_TRUE((*wal)->SyncTo(1).ok());  // no-op under kNever
  EXPECT_EQ((*wal)->synced_seq(), 0u);
  ASSERT_TRUE((*wal)->Sync().ok());  // explicit flush always works
  EXPECT_EQ((*wal)->synced_seq(), 1u);
}

TEST(WalWriterTest, IntervalPolicyFlushesInBackground) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kInterval;
  opts.interval_ms = 1.0;
  auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, MakeBatch(1)).ok());
  ASSERT_TRUE((*wal)->Append(2, MakeBatch(2)).ok());
  // The flusher must catch up without any foreground Sync call.
  for (int spin = 0; spin < 2000 && (*wal)->synced_seq() < 2; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ((*wal)->synced_seq(), 2u);
}

TEST(WalWriterTest, RotationAndGc) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kAlways;
  auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE((*wal)->Append(i, MakeBatch(i)).ok());
  }
  ASSERT_TRUE((*wal)->Rotate(4).ok());
  EXPECT_EQ((*wal)->segment_start(), 4u);
  for (int i = 4; i <= 5; ++i) {
    ASSERT_TRUE((*wal)->Append(i, MakeBatch(i)).ok());
  }
  auto segs = ListWalSegments(dir.path());
  ASSERT_TRUE(segs.ok());
  ASSERT_EQ(segs->size(), 2u);
  EXPECT_EQ((*segs)[0].start, 1u);
  EXPECT_EQ((*segs)[1].start, 4u);

  // last_included=2 doesn't cover segment 1 (it holds seq 3) — no deletion.
  auto gc = (*wal)->DeleteSegmentsCoveredBy(2);
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(*gc, 0u);
  // last_included=3 covers it exactly.
  gc = (*wal)->DeleteSegmentsCoveredBy(3);
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(*gc, 1u);
  segs = ListWalSegments(dir.path());
  ASSERT_TRUE(segs.ok());
  ASSERT_EQ(segs->size(), 1u);
  EXPECT_EQ((*segs)[0].start, 4u);
  // The open segment is never deleted, no matter the horizon.
  gc = (*wal)->DeleteSegmentsCoveredBy(1000);
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(*gc, 0u);
}

TEST(WalWriterTest, RotateOnEmptySegmentIsNoOp) {
  TempDir dir;
  WalOptions opts;
  auto wal = WalWriter::Open(dir.path(), 3, 2, opts);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Rotate(3).ok());  // nothing written yet
  EXPECT_EQ((*wal)->segment_start(), 3u);
  EXPECT_EQ((*wal)->rotations_total(), 0u);
  ASSERT_TRUE((*wal)->Append(3, MakeBatch(3)).ok());
  EXPECT_EQ((*wal)->written_seq(), 3u);
}

TEST(WalWriterTest, ReopenExistingSegmentAppends) {
  TempDir dir;
  WalOptions opts;
  {
    auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, MakeBatch(1)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  {
    auto wal = WalWriter::Open(dir.path(), 1, 1, opts);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(2, MakeBatch(2)).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  auto read = ReadWalFile(dir.File(WalSegmentName(1)));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].seq, 2u);
}

// -------------------------------------------------- torn-tail property --

/// The satellite property test: write a multi-record WAL, then for EVERY
/// byte offset L of the file, truncate a copy to L bytes and read it back.
/// The reader must return exactly the whole records that fit (a prefix —
/// never a partial batch), point valid_bytes at their end, and flag the
/// leftover bytes as torn with a diagnostic.
TEST(WalTornTailTest, EveryByteOffsetRecoversWholePrefix) {
  TempDir dir;
  WalOptions opts;
  opts.policy = FsyncPolicy::kAlways;
  const int kN = 6;
  std::vector<std::string> encoded;
  {
    auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= kN; ++i) {
      UpdateBatch b = MakeBatch(i);
      encoded.push_back(Encoded(b));
      ASSERT_TRUE((*wal)->Append(i, b).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::string full;
  ASSERT_TRUE(ReadFileToString(dir.File(WalSegmentName(1)), &full).ok());

  // Record boundaries from the framing itself (header is 16 bytes).
  std::vector<size_t> boundary = {0};
  {
    size_t pos = 0;
    while (pos < full.size()) {
      uint32_t len = 0;
      std::memcpy(&len, full.data() + pos, sizeof(len));
      pos += 16 + len;
      boundary.push_back(pos);
    }
    ASSERT_EQ(boundary.size(), static_cast<size_t>(kN) + 1);
    ASSERT_EQ(boundary.back(), full.size());
  }

  const std::string probe = dir.File("probe.log");
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(probe, full.substr(0, cut)).ok());
    auto read = ReadWalFile(probe);
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": " << read.status().ToString();
    const size_t n = read->records.size();
    ASSERT_LE(n, static_cast<size_t>(kN)) << "cut=" << cut;
    // Exactly the records that fit in full: the largest k with
    // boundary[k] <= cut.
    size_t expect_n = 0;
    while (expect_n < static_cast<size_t>(kN) &&
           boundary[expect_n + 1] <= cut) {
      ++expect_n;
    }
    EXPECT_EQ(n, expect_n) << "cut=" << cut;
    EXPECT_EQ(read->valid_bytes, boundary[n]) << "cut=" << cut;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(read->records[i].seq, i + 1) << "cut=" << cut;
      EXPECT_EQ(Encoded(read->records[i].batch), encoded[i])
          << "cut=" << cut << " record " << i;
    }
    const bool leftover = cut != boundary[n];
    EXPECT_EQ(read->torn, leftover) << "cut=" << cut;
    if (leftover) {
      EXPECT_FALSE(read->diagnostic.empty()) << "cut=" << cut;
    }
  }
}

TEST(WalTornTailTest, BitFlipIsDetectedAndStopsTheScan) {
  TempDir dir;
  WalOptions opts;
  {
    auto wal = WalWriter::Open(dir.path(), 1, 0, opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*wal)->Append(i, MakeBatch(i)).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  const std::string path = dir.File(WalSegmentName(1));
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes).ok());
  // Flip one payload byte inside the SECOND record; record 1 must survive,
  // records 2+ must be dropped with a diagnostic.
  uint32_t len0 = 0;
  std::memcpy(&len0, bytes.data(), sizeof(len0));
  const size_t second = 16 + len0;
  bytes[second + 16 + 2] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].seq, 1u);
  EXPECT_TRUE(read->torn);
  EXPECT_FALSE(read->diagnostic.empty());
  EXPECT_EQ(read->valid_bytes, second);
}

TEST(WalTornTailTest, ChecksumValidGarbagePayloadIsHardCorruption) {
  // A payload that passes its CRC but fails DecodeBatch cannot be produced
  // by truncation — the reader must escalate it to a hard error rather than
  // silently dropping the tail.
  TempDir dir;
  const uint64_t seq = 1;
  const std::string payload = "zz";  // not a valid batch encoding
  uint32_t crc = Crc32(&seq, sizeof(seq));
  crc = Crc32(payload.data(), payload.size(), crc);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string record(16, '\0');
  std::memcpy(record.data(), &len, sizeof(len));
  std::memcpy(record.data() + 4, &crc, sizeof(crc));
  std::memcpy(record.data() + 8, &seq, sizeof(seq));
  record += payload;
  const std::string path = dir.File(WalSegmentName(1));
  ASSERT_TRUE(WriteFileAtomic(path, record).ok());
  auto read = ReadWalFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

// ----------------------------------------------------- manifest / CLEAN --

TEST(ManifestTest, Roundtrip) {
  TempDir dir;
  live::Manifest m;
  m.generation = 7;
  m.snapshot_file = "snap-7.wssp";
  m.last_included_seq = 41;
  m.version = 95;
  ASSERT_TRUE(live::WriteManifest(dir.path(), m).ok());
  auto back = live::ReadManifest(dir.path());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->format, 1u);
  EXPECT_EQ(back->generation, 7u);
  EXPECT_EQ(back->snapshot_file, "snap-7.wssp");
  EXPECT_EQ(back->last_included_seq, 41u);
  EXPECT_EQ(back->version, 95u);
}

TEST(ManifestTest, MissingIsNotFoundTamperIsCorruption) {
  TempDir dir;
  EXPECT_EQ(live::ReadManifest(dir.path()).status().code(),
            StatusCode::kNotFound);
  live::Manifest m;
  m.generation = 1;
  m.snapshot_file = "snap-1.wssp";
  ASSERT_TRUE(live::WriteManifest(dir.path(), m).ok());
  std::string bytes;
  ASSERT_TRUE(
      ReadFileToString(dir.File(live::kManifestFile), &bytes).ok());
  // Flip a content byte; the checksum line must catch it.
  bytes[10] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(dir.File(live::kManifestFile), bytes).ok());
  EXPECT_EQ(live::ReadManifest(dir.path()).status().code(),
            StatusCode::kCorruption);
}

TEST(ManifestTest, CleanMarkerLifecycle) {
  TempDir dir;
  EXPECT_EQ(live::ReadCleanMarker(dir.path()).status().code(),
            StatusCode::kNotFound);
  live::CleanMarker c;
  c.last_seq = 12;
  c.version = 30;
  ASSERT_TRUE(live::WriteCleanMarker(dir.path(), c).ok());
  auto back = live::ReadCleanMarker(dir.path());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->last_seq, 12u);
  EXPECT_EQ(back->version, 30u);
  ASSERT_TRUE(live::RemoveCleanMarker(dir.path()).ok());
  EXPECT_EQ(live::ReadCleanMarker(dir.path()).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------- snapshot persist --

TEST(PersistTest, SnapshotFileNames) {
  EXPECT_EQ(live::SnapshotFileName(3), "snap-3.wssp");
  uint64_t gen = 0;
  EXPECT_TRUE(live::ParseSnapshotFileName("snap-12.wssp", &gen));
  EXPECT_EQ(gen, 12u);
  EXPECT_FALSE(live::ParseSnapshotFileName("snap-12.wssp.tmp", &gen));
  EXPECT_FALSE(live::ParseSnapshotFileName("wal-00000001.log", &gen));
  EXPECT_FALSE(live::ParseSnapshotFileName("snap-.wssp", &gen));
}

TEST(PersistTest, SnapshotRoundtrip) {
  TempDir dir;
  live::GraphSnapshot snap;
  snap.graph = testing::MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  AttachNodeWeights(&snap.graph);
  AttachAverageDistance(&snap.graph, 100, 7);
  snap.index = InvertedIndex::Build(snap.graph);
  snap.node_text[2] = "extra words here";
  snap.node_text[4] = "more text";
  snap.generation = 9;

  const std::string path = dir.File(live::SnapshotFileName(9));
  ASSERT_TRUE(live::SaveSnapshotFile(path, snap).ok());
  EXPECT_FALSE(PathExists(path + ".tmp"));
  auto back = live::LoadSnapshotFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->generation, 9u);
  ASSERT_EQ(back->graph.num_nodes(), snap.graph.num_nodes());
  EXPECT_EQ(back->graph.num_triples(), snap.graph.num_triples());
  for (NodeId v = 0; v < snap.graph.num_nodes(); ++v) {
    EXPECT_EQ(back->graph.NodeName(v), snap.graph.NodeName(v));
    EXPECT_EQ(back->graph.NodeWeight(v), snap.graph.NodeWeight(v));
  }
  EXPECT_EQ(back->graph.average_distance(), snap.graph.average_distance());
  EXPECT_EQ(back->index.num_terms(), snap.index.num_terms());
  EXPECT_EQ(back->index.num_postings(), snap.index.num_postings());
  EXPECT_EQ(back->node_text.size(), 2u);
  EXPECT_EQ(back->node_text.at(2), "extra words here");
  EXPECT_EQ(back->node_text.at(4), "more text");
}

TEST(PersistTest, TruncatedSnapshotIsRejected) {
  TempDir dir;
  live::GraphSnapshot snap;
  snap.graph = testing::MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  AttachNodeWeights(&snap.graph);
  snap.index = InvertedIndex::Build(snap.graph);
  snap.generation = 1;
  const std::string path = dir.File(live::SnapshotFileName(1));
  ASSERT_TRUE(live::SaveSnapshotFile(path, snap).ok());
  auto size = FileSizeOf(path);
  ASSERT_TRUE(size.ok());
  // Cut at several depths, including just shy of the end marker.
  for (uint64_t cut : {uint64_t{0}, uint64_t{3}, *size / 2, *size - 1}) {
    ASSERT_TRUE(TruncateFile(path, cut).ok());
    auto load = live::LoadSnapshotFile(path);
    EXPECT_FALSE(load.ok()) << "cut=" << cut;
    // Restore for the next iteration.
    ASSERT_TRUE(live::SaveSnapshotFile(path, snap).ok());
  }
}

TEST(PersistTest, FsyncPolicyNamesRoundtrip) {
  for (FsyncPolicy p :
       {FsyncPolicy::kAlways, FsyncPolicy::kInterval, FsyncPolicy::kNever}) {
    auto parsed = live::ParseFsyncPolicy(live::FsyncPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(live::ParseFsyncPolicy("bogus").ok());
  EXPECT_FALSE(live::ParseFsyncPolicy("").ok());
}

}  // namespace
}  // namespace wikisearch
