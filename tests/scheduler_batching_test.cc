// Cross-request micro-batching equivalence (DESIGN.md §9): distinct
// queries merged into one batch epoch must return answers bit-identical to
// the same queries run serially — across every engine kind, with and
// without a shared SearchStatePool. Batching only changes *when* queries
// are dispatched and how wide their thread grants are; the engine is
// deterministic in both, so any divergence here is state leaking between
// batched members. Also pins the counter algebra (merged = executed −
// epochs while batching is on) and that batch_window_ms = 0 takes the
// exact unbatched path: zero epochs, zero merges, identical answers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "server/query_scheduler.h"
#include "server/search_service.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using server::QueryScheduler;

/// Canonical byte-exact serialization (same scheme as
/// concurrency_equivalence_test): scores as raw IEEE-754 bits, every field
/// that reaches the response JSON.
std::string Canonical(const Result<SearchResult>& r) {
  std::ostringstream out;
  if (!r.ok()) {
    out << "error:" << r.status().ToString();
    return out.str();
  }
  for (const std::string& kw : r->keywords) out << kw << ';';
  out << "|levels=" << r->stats.levels
      << "|centrals=" << r->stats.num_centrals << '|';
  for (const AnswerGraph& a : r->answers) {
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(a.score));
    std::memcpy(&score_bits, &a.score, sizeof(score_bits));
    out << "a{" << a.central << ',' << a.depth << ',' << score_bits << ",n[";
    for (NodeId v : a.nodes) out << v << ',';
    out << "],e[";
    for (const AnswerEdge& e : a.edges) {
      out << e.src << '-' << e.label << '-' << e.dst << ',';
    }
    out << "]}";
  }
  return out.str();
}

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 900;
    cfg.num_summary_nodes = 5;
    cfg.num_topic_nodes = 12;
    cfg.num_communities = 6;
    cfg.vocab_size = 1200;
    cfg.seed = 271;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 2000, 7);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

/// Draws `count` *distinct* keyword queries (distinct single-flight keys,
/// so batching — not deduplication — is what merges them).
std::vector<std::vector<std::string>> DrawQueries(const Fixture& f,
                                                  size_t count) {
  Rng rng(testing::TestSeed());
  std::vector<std::vector<std::string>> queries;
  std::vector<std::string> keys;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(3);
    for (size_t i = 0; i < 2 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() < 2) continue;
    std::string key;
    for (const auto& k : kws) key += k + ' ';
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    keys.push_back(key);
    queries.push_back(std::move(kws));
  }
  return queries;
}

std::string QueryKey(const std::vector<std::string>& kws) {
  std::string key;
  for (const auto& k : kws) key += k + ' ';
  return key;
}

void RunBatchedEquivalence(EngineKind kind, bool pooled, double window_ms) {
  SCOPED_TRACE(std::string(EngineKindName(kind)) +
               (pooled ? "/pooled" : "/fresh") + "/window=" +
               std::to_string(window_ms));
  Fixture& f = SharedFixture();
  const auto queries = DrawQueries(f, 8);

  SearchOptions opts;
  opts.engine = kind;
  opts.top_k = 8;
  opts.threads = 4;

  SearchStatePool pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  if (pooled) engine.SetStatePool(&pool);

  // Serial baselines from the very same engine instance, at a fixed width.
  std::vector<std::string> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(Canonical(engine.SearchKeywords(q, opts)));
  }

  // Batched: all queries fired concurrently into a scheduler whose window
  // and limit force epochs of several distinct queries; each member runs
  // with whatever width the epoch granted it. Determinism across widths is
  // already pinned by kernel_equivalence_test — what this adds is the
  // batched *scheduling* around the engine.
  QueryScheduler::Options sopts;
  sopts.batch_window_ms = window_ms;
  sopts.batch_limit = 4;
  sopts.max_running = 2;
  sopts.total_threads = 4;
  sopts.max_threads_per_query = 4;
  QueryScheduler scheduler(sopts);

  std::vector<std::string> got(queries.size());
  std::vector<QueryScheduler::Outcome::Kind> kinds(queries.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      auto outcome =
          scheduler.Run(QueryKey(queries[i]), [&](int width) {
            SearchOptions o = opts;
            o.threads = width;
            return engine.SearchKeywords(queries[i], o);
          });
      kinds[i] = outcome.kind;
      got[i] = outcome.result ? Canonical(*outcome.result) : "null";
    });
  }
  for (auto& th : threads) th.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    // Distinct keys: every caller executed (nothing shed, nothing shared).
    EXPECT_EQ(kinds[i], QueryScheduler::Outcome::Kind::kRan) << "query " << i;
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
  EXPECT_EQ(scheduler.executed_total(), queries.size());
  EXPECT_EQ(scheduler.shed_total(), 0u);
  EXPECT_EQ(scheduler.shared_total(), 0u);
  EXPECT_EQ(scheduler.in_flight(), 0u);

  if (window_ms > 0) {
    // Every execution went through an epoch, so the counter algebra is
    // exact: each epoch of size s contributes s−1 merges.
    EXPECT_GE(scheduler.batch_epochs_total(), 1u);
    EXPECT_LE(scheduler.batch_epochs_total(), queries.size());
    EXPECT_EQ(scheduler.merged_total(),
              scheduler.executed_total() - scheduler.batch_epochs_total());
  } else {
    // Window 0 is the exact pre-batching path: no epoch is ever created.
    EXPECT_EQ(scheduler.batch_epochs_total(), 0u);
    EXPECT_EQ(scheduler.merged_total(), 0u);
  }
}

class SchedulerBatchingTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(SchedulerBatchingTest, FreshStatesMatchSerial) {
  RunBatchedEquivalence(GetParam(), /*pooled=*/false, /*window_ms=*/25.0);
}

TEST_P(SchedulerBatchingTest, PooledStatesMatchSerial) {
  RunBatchedEquivalence(GetParam(), /*pooled=*/true, /*window_ms=*/25.0);
}

TEST_P(SchedulerBatchingTest, WindowZeroIsTheUnbatchedPath) {
  RunBatchedEquivalence(GetParam(), /*pooled=*/true, /*window_ms=*/0.0);
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, SchedulerBatchingTest,
                         ::testing::Values(EngineKind::kSequential,
                                           EngineKind::kCpuParallel,
                                           EngineKind::kCpuDynamic,
                                           EngineKind::kGpuSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSequential:
                               return std::string("Sequential");
                             case EngineKind::kCpuParallel:
                               return std::string("CpuParallel");
                             case EngineKind::kCpuDynamic:
                               return std::string("CpuDynamic");
                             default:
                               return std::string("GpuSim");
                           }
                         });

// A saturated scheduler merges arrivals even past the window: with one
// running slot held by a stalled query, late arrivals join the collecting
// epoch instead of queueing individually.
TEST(SchedulerBatchingTest, SaturationKeepsTheEpochCollecting) {
  Fixture& f = SharedFixture();
  const auto queries = DrawQueries(f, 5);
  SearchOptions opts;
  opts.engine = EngineKind::kSequential;
  opts.top_k = 4;
  SearchEngine engine(&f.kb.graph, &f.index, opts);

  QueryScheduler::Options sopts;
  sopts.batch_window_ms = 5.0;  // far shorter than the stall below
  sopts.batch_limit = 16;
  sopts.max_running = 1;
  QueryScheduler scheduler(sopts);

  // Occupy the only slot with a long execution. Its own epoch (size 1,
  // dispatched as soon as its window lapses — the slot is free) is the
  // first of the two this test expects.
  std::thread blocker([&] {
    scheduler.Run("", [&](int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      return engine.SearchKeywords(queries[0], opts);
    });
  });
  // Wait until the blocker holds the slot.
  while (scheduler.running() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Four distinct queries arrive spread over ~10 windows. None can run —
  // the slot is taken — so they all accumulate into the one open epoch and
  // dispatch together when the blocker finishes.
  std::vector<std::thread> threads;
  for (int i = 1; i <= 4; ++i) {
    threads.emplace_back([&, i] {
      scheduler.Run(QueryKey(queries[i]), [&](int width) {
        SearchOptions o = opts;
        o.threads = width;
        return engine.SearchKeywords(queries[i], o);
      });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(12));
  }
  for (auto& th : threads) th.join();
  blocker.join();

  // Two epochs: the blocker's (size 1, 0 merges) and the group's (size 4,
  // 3 merges — every arrival past the first was merged, not queued).
  EXPECT_EQ(scheduler.batch_epochs_total(), 2u);
  EXPECT_EQ(scheduler.merged_total(), 3u);
  EXPECT_EQ(scheduler.executed_total(), 5u);
  EXPECT_EQ(scheduler.in_flight(), 0u);
  EXPECT_EQ(scheduler.running(), 0u);
}

// End-to-end through the service: concurrent distinct /search requests
// under a batching window return the same documents as serial requests
// (timings excised — wall-clock is the one field batching may change), and
// the epoch counters surface through the accessors and /stats.
TEST(SchedulerBatchingTest, ServiceBatchingMatchesSerialBodies) {
  GraphBuilder b;
  b.AddTriple("xml toolkit", "part of", "data tools");
  b.AddTriple("rdf engine", "part of", "data tools");
  b.AddTriple("sql planner", "part of", "data tools");
  KnowledgeGraph graph = std::move(b).Build();
  AttachNodeWeights(&graph);
  AttachAverageDistance(&graph, 100, 3);
  InvertedIndex index = InvertedIndex::Build(graph);

  // Timings are load-dependent; everything else in the document is
  // deterministic. Splice the timings object out before comparing (both
  // sides get the identical treatment).
  auto strip_timings = [](std::string body) {
    // total_ms/expansion_ms/topdown_ms are the trailing keys of the stats
    // object; erase from the first of them to the object's closing brace.
    size_t start = body.find(",\"total_ms\":");
    if (start == std::string::npos) return body;
    size_t end = body.find('}', start);
    if (end == std::string::npos) return body;
    body.erase(start, end - start);
    return body;
  };

  constexpr int kQueries = 6;  // distinct k => distinct scheduler keys
  auto make_req = [](int k) {
    server::HttpRequest req;
    req.params["q"] = "xml rdf";
    req.params["k"] = std::to_string(k);
    return req;
  };

  server::SearchService serial(&graph, &index, {}, /*cache_capacity=*/0);
  std::vector<std::string> expected(kQueries);
  for (int k = 1; k <= kQueries; ++k) {
    server::HttpResponse resp = serial.HandleSearch(make_req(k));
    EXPECT_EQ(resp.status, 200);
    expected[k - 1] = strip_timings(std::move(resp.body));
  }

  server::SearchService batched(&graph, &index, {}, /*cache_capacity=*/0);
  batched.SetBatchWindow(25.0);
  batched.SetBatchLimit(4);
  std::vector<std::string> got(kQueries);
  std::vector<std::thread> threads;
  for (int k = 1; k <= kQueries; ++k) {
    threads.emplace_back([&, k] {
      server::HttpResponse resp = batched.HandleSearch(make_req(k));
      EXPECT_EQ(resp.status, 200);
      got[k - 1] = strip_timings(std::move(resp.body));
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(got[i], expected[i]) << "k=" << (i + 1);
  }

  // Every request executed (cache off, keys distinct), all through epochs:
  // the merge algebra is exact.
  EXPECT_GE(batched.batch_epochs(), 1u);
  EXPECT_EQ(batched.batch_merged_queries(),
            static_cast<uint64_t>(kQueries) - batched.batch_epochs());
  EXPECT_EQ(serial.batch_epochs(), 0u);
  EXPECT_EQ(serial.batch_merged_queries(), 0u);

  // The knob and counters surface in /stats.
  std::string stats = batched.HandleStats(server::HttpRequest{}).body;
  EXPECT_NE(stats.find("\"batch_window_ms\":25"), std::string::npos);
  EXPECT_NE(stats.find("\"batch_merged_queries\""), std::string::npos);
  EXPECT_NE(stats.find("\"batch_epochs\""), std::string::npos);
}

}  // namespace
}  // namespace wikisearch
