#include <gtest/gtest.h>

#include "gst/objectrank.h"
#include "test_util.h"

namespace wikisearch::gst {
namespace {

struct StarKb {
  // hub connected to 4 leaves; leaf0 carries the keyword.
  StarKb() {
    GraphBuilder b;
    b.AddTriple("leaf keyterm", "r", "hub");
    b.AddTriple("leaf two", "r", "hub");
    b.AddTriple("leaf three", "r", "hub");
    b.AddTriple("leaf four", "r", "hub");
    graph = std::move(b).Build();
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(ObjectRankTest, AuthorityVectorIsStochastic) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  ObjectRankOptions opts;
  size_t iters = 0;
  auto rank = engine.AuthorityFlow({0}, opts, &iters);
  double sum = 0.0;
  for (double r : rank) {
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);  // no dangling nodes in the bi-directed view
  EXPECT_GT(iters, 1u);
}

TEST(ObjectRankTest, BaseAndNeighborsRankHighest) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  ObjectRankOptions opts;
  auto rank = engine.AuthorityFlow({kb.graph.FindNode("leaf keyterm")}, opts,
                                   nullptr);
  NodeId base = kb.graph.FindNode("leaf keyterm");
  NodeId hub = kb.graph.FindNode("hub");
  NodeId other = kb.graph.FindNode("leaf two");
  // The degree-4 hub accumulates flow and outranks even the restart node —
  // the summary-node pathology of authority methods that the paper's
  // degree-of-summary weighting is designed to counter.
  EXPECT_GT(rank[hub], rank[base]);
  EXPECT_GT(rank[base], rank[other]);  // restart mass beats far leaves
}

TEST(ObjectRankTest, SearchReturnsSortedTopK) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  ObjectRankOptions opts;
  opts.top_k = 3;
  auto res = engine.SearchKeywords({"keyterm"}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->nodes.size(), 3u);
  // Top-2 are the hub (flow accumulator) and the keyword node itself.
  EXPECT_TRUE(res->nodes[0].node == kb.graph.FindNode("hub") ||
              res->nodes[0].node == kb.graph.FindNode("leaf keyterm"));
  EXPECT_TRUE(res->nodes[1].node == kb.graph.FindNode("hub") ||
              res->nodes[1].node == kb.graph.FindNode("leaf keyterm"));
  for (size_t i = 1; i < res->nodes.size(); ++i) {
    EXPECT_GE(res->nodes[i - 1].score, res->nodes[i].score);
  }
}

TEST(ObjectRankTest, AndSemanticsRequiresBothFlows) {
  // Path: kwa --- mid --- kwb. With AND semantics `mid` outranks the
  // endpoints' far sides since it receives flow from both base sets.
  GraphBuilder b;
  b.AddTriple("left kwa", "r", "mid node");
  b.AddTriple("mid node", "r", "right kwb");
  b.AddTriple("left kwa", "r", "dead end");
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  ObjectRankEngine engine(&g, &index);
  ObjectRankOptions opts;
  opts.top_k = 10;
  auto res = engine.SearchKeywords({"kwa", "kwb"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->nodes.empty());
  // The product score of `mid node` must beat `dead end` (no kwb flow
  // reaches it except via two hops through kwa).
  double mid_score = 0, dead_score = 0;
  for (const RankedNode& rn : res->nodes) {
    if (rn.node == g.FindNode("mid node")) mid_score = rn.score;
    if (rn.node == g.FindNode("dead end")) dead_score = rn.score;
  }
  EXPECT_GT(mid_score, dead_score);
}

TEST(ObjectRankTest, OrSemanticsSumsFlows) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  ObjectRankOptions opts;
  opts.and_semantics = false;
  opts.top_k = 5;
  auto res = engine.SearchKeywords({"keyterm", "leaf"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->nodes.empty());
}

TEST(ObjectRankTest, ErrorsOnBadInput) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  EXPECT_FALSE(engine.SearchKeywords({}, ObjectRankOptions{}).ok());
  EXPECT_EQ(
      engine.SearchKeywords({"zzz"}, ObjectRankOptions{}).status().code(),
      StatusCode::kNotFound);
}

TEST(ObjectRankTest, ConvergesWithinIterationCap) {
  StarKb kb;
  ObjectRankEngine engine(&kb.graph, &kb.index);
  ObjectRankOptions opts;
  opts.epsilon = 1e-12;
  opts.max_iterations = 500;
  size_t iters = 0;
  engine.AuthorityFlow({0}, opts, &iters);
  EXPECT_LT(iters, 500u);  // power iteration converges on this tiny graph
}

}  // namespace
}  // namespace wikisearch::gst
