// Bound-driven top-down equivalence (DESIGN.md §14): the bounded driver —
// admissible score lower bounds, top-k certification pruning, pooled
// epoch-versioned extraction scratch — must serve byte-identical answers to
// the pre-scratch exhaustive path on every engine kind, thread count,
// state-reuse mode, dedup setting, and at every forced deadline-expiry
// point (including the new "topdown:bound" certification point). The suite
// also proves the allocation contract: steady-state extraction performs
// zero per-candidate heap allocations once the scratch is warm.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/engine.h"
#include "core/extraction_scratch.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "core/top_down.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it, so
// a test can assert that a code region performs no heap allocation at all.

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

// The replacement operators pair new/malloc with delete/free on purpose;
// GCC's -Wmismatched-new-delete cannot see that both sides are overridden.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace wikisearch {
namespace {

struct Fixture {
  explicit Fixture(const gen::WikiGenConfig& cfg) {
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1500, 5);
    index = InvertedIndex::Build(kb.graph);
  }
  Fixture() : Fixture(DefaultConfig()) {}

  static gen::WikiGenConfig DefaultConfig() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1200;
    cfg.num_summary_nodes = 6;
    cfg.num_topic_nodes = 14;
    cfg.num_communities = 7;
    cfg.vocab_size = 1600;
    cfg.seed = 917;
    return cfg;
  }

  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::vector<std::vector<std::string>> TestQueries(const Fixture& f,
                                                  size_t count) {
  Rng rng(testing::TestSeed());
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(4);
    for (size_t i = 0; i < 2 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  return queries;
}

// Byte-identical, not merely equivalent: the bounded driver must serve the
// exact answers the exhaustive path serves — same candidates, same nodes,
// same floating-point scores (the bound only skips work, never changes it).
void ExpectByteIdentical(const SearchResult& a, const SearchResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    const AnswerGraph& x = a.answers[i];
    const AnswerGraph& y = b.answers[i];
    EXPECT_EQ(x.central, y.central) << label << " answer " << i;
    EXPECT_EQ(x.depth, y.depth) << label << " answer " << i;
    EXPECT_EQ(x.nodes, y.nodes) << label << " answer " << i;
    EXPECT_TRUE(x.edges == y.edges) << label << " answer " << i;
    EXPECT_EQ(x.score, y.score) << label << " answer " << i;
  }
  EXPECT_EQ(a.stats.num_centrals, b.stats.num_centrals) << label;
  EXPECT_EQ(a.stats.levels, b.stats.levels) << label;
}

// The three top-down configurations under comparison. "legacy" is the
// pre-scratch code shape; "scratch" is the new driver with pruning disabled
// (exhaustive, pooled-scratch extraction); "bounded" is the production
// default.
enum class TdMode { kLegacy, kScratch, kBounded };
const TdMode kAllModes[] = {TdMode::kLegacy, TdMode::kScratch,
                            TdMode::kBounded};

const char* TdModeName(TdMode m) {
  switch (m) {
    case TdMode::kLegacy:
      return "legacy";
    case TdMode::kScratch:
      return "scratch";
    case TdMode::kBounded:
      return "bounded";
  }
  return "?";
}

void ApplyMode(SearchOptions* opts, TdMode m) {
  opts->legacy_topdown_extraction = m == TdMode::kLegacy;
  opts->enable_topdown_bound = m == TdMode::kBounded;
}

void CheckCandidateAccounting(const SearchResult& r, TdMode m,
                              const std::string& label) {
  EXPECT_EQ(r.stats.candidates_extracted + r.stats.candidates_pruned +
                r.stats.candidates_skipped,
            r.stats.num_centrals)
      << label;
  if (m != TdMode::kBounded) {
    EXPECT_EQ(r.stats.candidates_pruned, 0u) << label;
  }
}

const EngineKind kAllEngines[] = {
    EngineKind::kSequential,
    EngineKind::kCpuParallel,
    EngineKind::kCpuDynamic,
    EngineKind::kGpuSim,
};

class TopDownEquivalenceTest : public ::testing::TestWithParam<EngineKind> {};

// ---------------------------------------------------------------------------
// Legacy vs scratch vs bounded across {1, 8} threads x dedup on/off x
// pooled/fresh states.

TEST_P(TopDownEquivalenceTest, BoundedMatchesExhaustiveAcrossModes) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 3);

  for (int threads : {1, 8}) {
    for (bool dedup : {true, false}) {
      SearchOptions base;
      base.top_k = 10;
      base.threads = threads;
      base.engine = GetParam();
      base.dedup_answers = dedup;
      const std::string cfg_label = std::string(EngineKindName(GetParam())) +
                                    " T" + std::to_string(threads) +
                                    (dedup ? " dedup" : " nodedup");

      // Pooled: one engine (with its own state and scratch pools) per mode
      // serves the whole query stream, so later queries run on epoch-reused
      // scratch buffers.
      {
        SearchStatePool state_pools[3];
        ExtractionScratchPool scratch_pools[3];
        std::vector<std::unique_ptr<SearchEngine>> engines;
        std::vector<SearchOptions> mode_opts;
        for (int mi = 0; mi < 3; ++mi) {
          SearchOptions o = base;
          ApplyMode(&o, kAllModes[mi]);
          engines.push_back(
              std::make_unique<SearchEngine>(&f.kb.graph, &f.index, o));
          engines.back()->SetStatePool(&state_pools[mi]);
          engines.back()->SetScratchPool(&scratch_pools[mi]);
          mode_opts.push_back(o);
        }
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          SearchResult by_mode[3];
          for (int mi = 0; mi < 3; ++mi) {
            auto res = engines[mi]->SearchKeywords(queries[qi], mode_opts[mi]);
            ASSERT_TRUE(res.ok()) << res.status().ToString();
            CheckCandidateAccounting(
                *res, kAllModes[mi],
                cfg_label + " pooled q" + std::to_string(qi) + " " +
                    TdModeName(kAllModes[mi]));
            by_mode[mi] = *res;
          }
          ExpectByteIdentical(by_mode[0], by_mode[1],
                              cfg_label + " pooled q" + std::to_string(qi) +
                                  " legacy vs scratch");
          ExpectByteIdentical(by_mode[0], by_mode[2],
                              cfg_label + " pooled q" + std::to_string(qi) +
                                  " legacy vs bounded");
        }
      }

      // Fresh: a new engine per (query, mode) — first-epoch scratch.
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        SearchResult by_mode[3];
        for (int mi = 0; mi < 3; ++mi) {
          SearchOptions o = base;
          ApplyMode(&o, kAllModes[mi]);
          SearchEngine engine(&f.kb.graph, &f.index, o);
          auto res = engine.SearchKeywords(queries[qi], o);
          ASSERT_TRUE(res.ok()) << res.status().ToString();
          by_mode[mi] = *res;
        }
        ExpectByteIdentical(by_mode[0], by_mode[1],
                            cfg_label + " fresh q" + std::to_string(qi) +
                                " legacy vs scratch");
        ExpectByteIdentical(by_mode[0], by_mode[2],
                            cfg_label + " fresh q" + std::to_string(qi) +
                                " legacy vs bounded");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized graphs: fresh generator configs and random community queries
// every run (seeded by TestSeed, printed on failure by test_util).

TEST_P(TopDownEquivalenceTest, BoundedMatchesLegacyOnRandomGraphs) {
  Rng rng(testing::TestSeed());
  for (int rep = 0; rep < 2; ++rep) {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 600 + 211 * rep;
    cfg.num_summary_nodes = 5;
    cfg.num_topic_nodes = 9;
    cfg.num_communities = 5;
    cfg.vocab_size = 900;
    cfg.seed = rng.Uniform(1u << 30);
    Fixture f(cfg);
    auto queries = TestQueries(f, 2);

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SearchOptions base;
      // Small k so the candidate set typically exceeds it and the bound
      // actually engages.
      base.top_k = 5;
      base.threads = 8;
      base.engine = GetParam();
      SearchOptions legacy = base;
      ApplyMode(&legacy, TdMode::kLegacy);
      SearchOptions bounded = base;
      ApplyMode(&bounded, TdMode::kBounded);
      SearchEngine le(&f.kb.graph, &f.index, legacy);
      SearchEngine be(&f.kb.graph, &f.index, bounded);
      auto lr = le.SearchKeywords(queries[qi], legacy);
      auto br = be.SearchKeywords(queries[qi], bounded);
      ASSERT_TRUE(lr.ok()) << lr.status().ToString();
      ASSERT_TRUE(br.ok()) << br.status().ToString();
      ExpectByteIdentical(*lr, *br,
                          std::string(EngineKindName(GetParam())) + " rep " +
                              std::to_string(rep) + " q" +
                              std::to_string(qi));
      CheckCandidateAccounting(*br, TdMode::kBounded, "random bounded");
    }
  }
}

// ---------------------------------------------------------------------------
// Forced deadline expiry at every top-down fault point — including the new
// "topdown:bound" certification point — in every mode that reaches it: the
// aborted run must yield valid partial answers, and a clean rerun on the
// same (pooled) engine must be byte-identical across all modes.

TEST_P(TopDownEquivalenceTest, DeadlineExpiryAtTopDownFaultPoints) {
  Fixture& f = SharedFixture();
  // Pick a query whose candidate set exceeds top_k, so the bounded driver
  // genuinely attempts certification and "topdown:bound" fires.
  const int top_k = 5;
  auto queries = TestQueries(f, 6);
  std::vector<std::string> kws;
  for (const auto& q : queries) {
    SearchOptions probe;
    probe.top_k = top_k;
    probe.engine = GetParam();
    SearchEngine engine(&f.kb.graph, &f.index, probe);
    auto res = engine.SearchKeywords(q, probe);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    if (res->stats.num_centrals > static_cast<size_t>(2 * top_k)) {
      kws = q;
      break;
    }
  }
  if (kws.empty()) GTEST_SKIP() << "no query with enough candidates";

  // Calibrate the expiry budget against a clean timed run: the certification
  // point only fires after several completed extractions, and under a
  // sanitizer's slowdown a fixed 25ms deadline would expire before the fault
  // is ever reached. The stall is sized past the deadline so expiry during
  // the stall stays guaranteed.
  double calib_ms = 0.0;
  {
    SearchOptions copts;
    copts.top_k = top_k;
    copts.engine = GetParam();
    SearchEngine cengine(&f.kb.graph, &f.index, copts);
    const auto t0 = std::chrono::steady_clock::now();
    auto cres = cengine.SearchKeywords(kws, copts);
    ASSERT_TRUE(cres.ok()) << cres.status().ToString();
    calib_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  }
  const double deadline_ms = std::max(25.0, 4.0 * calib_ms + 50.0);
  const auto stall = std::chrono::milliseconds(
      static_cast<long long>(2.0 * deadline_ms) + 200);

  const bool dynamic = GetParam() == EngineKind::kCpuDynamic;
  const char* candidate_point =
      dynamic ? "dynamic:topdown" : "topdown:candidate";
  // What the stalled run must deterministically report. At one thread the
  // stalled worker itself hits the expired deadline next, so a timeout is
  // guaranteed — except at the certification point, where a successful
  // certification may legitimately prune the rest instead (either way the
  // query terminated early for a provable reason). At eight threads the
  // other workers may drain every remaining candidate within the budget, so
  // only the validity and recovery contracts are asserted.
  enum class Expect { kTimeout, kTimeoutOrPruned, kNone };
  struct PointCase {
    const char* point;
    int threads;
    Expect expect;
    // Modes whose code path reaches the point (the legacy driver never
    // certifies, so it cannot expire at "topdown:bound").
    std::vector<TdMode> modes;
  };
  const std::vector<TdMode> all_modes = {TdMode::kLegacy, TdMode::kScratch,
                                         TdMode::kBounded};
  const std::vector<TdMode> bounded_only = {TdMode::kBounded};
  const PointCase cases[] = {
      {candidate_point, 1, Expect::kTimeout, all_modes},
      {candidate_point, 8, Expect::kNone, all_modes},
      {"topdown:bound", 1, Expect::kTimeoutOrPruned, bounded_only},
      {"topdown:bound", 8, Expect::kNone, bounded_only},
  };

  for (const PointCase& pc : cases) {
    std::vector<SearchResult> cleans;
    for (TdMode mode : pc.modes) {
      SCOPED_TRACE(std::string(EngineKindName(GetParam())) + " @ " +
                   pc.point + " T" + std::to_string(pc.threads) + " " +
                   TdModeName(mode));
      SearchOptions opts;
      opts.top_k = top_k;
      opts.threads = pc.threads;
      opts.engine = GetParam();
      ApplyMode(&opts, mode);
      opts.deadline_ms = deadline_ms;
      auto fired = std::make_shared<std::atomic<bool>>(false);
      std::string target = pc.point;
      opts.fault_injection = [fired, target, stall](const char* p) {
        if (target == p && !fired->exchange(true)) {
          std::this_thread::sleep_for(stall);
        }
      };

      SearchStatePool state_pool;
      ExtractionScratchPool scratch_pool;
      SearchEngine engine(&f.kb.graph, &f.index, opts);
      engine.SetStatePool(&state_pool);
      engine.SetScratchPool(&scratch_pool);
      auto res = engine.SearchKeywords(kws, opts);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_TRUE(fired->load()) << "fault point never reached";
      if (pc.expect == Expect::kTimeout) {
        EXPECT_TRUE(res->stats.timed_out);
      } else if (pc.expect == Expect::kTimeoutOrPruned) {
        EXPECT_TRUE(res->stats.timed_out || res->stats.candidates_pruned > 0);
      }
      EXPECT_EQ(res->stats.candidates_extracted +
                    res->stats.candidates_pruned +
                    res->stats.candidates_skipped,
                res->stats.num_centrals);
      for (const AnswerGraph& a : res->answers) {
        testing::CheckAnswerInvariants(f.kb.graph, a, res->keywords.size());
      }

      // Rerun clean on the same engine: the pooled state and scratch the
      // aborted run left behind must recover fully.
      SearchOptions clean = opts;
      clean.deadline_ms = 0.0;
      clean.fault_injection = nullptr;
      auto after = engine.SearchKeywords(kws, clean);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      EXPECT_FALSE(after->stats.timed_out);
      cleans.push_back(*after);
    }
    for (size_t ci = 1; ci < cleans.size(); ++ci) {
      ExpectByteIdentical(cleans[0], cleans[ci],
                          std::string("post-expiry clean @ ") + pc.point);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, TopDownEquivalenceTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           std::string name = EngineKindName(i.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// ---------------------------------------------------------------------------
// Allocation contract (DESIGN.md §14): once a worker's scratch and output
// AnswerGraphs are warm, rebuilding every candidate of a query performs
// ZERO heap allocations — extraction, level cover, scoring and answer
// materialization all run out of pooled, epoch-cleared buffers.

TEST(TopDownScratchTest, SteadyStateExtractionAllocatesNothing) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 1);

  // Run stage 1 directly so the SearchState (and its centrals) are ours.
  SearchOptions opts;
  opts.top_k = 5;
  Status err = Status::OK();
  std::vector<std::vector<NodeId>> t_i;
  std::vector<std::string> used;
  for (const std::string& kw : queries[0]) {
    auto postings = IndexView(f.index).Lookup(kw);
    if (postings.empty()) continue;
    t_i.emplace_back(postings.begin(), postings.end());
    used.push_back(kw);
  }
  ASSERT_GE(t_i.size(), 2u);
  QueryContext ctx(GraphView(f.kb.graph), std::move(used), std::move(t_i),
                   ActivationMap(f.kb.graph.average_distance(), opts.alpha,
                                 true),
                   2 * static_cast<int>(
                           std::ceil(f.kb.graph.average_distance())) +
                       2);
  SearchState state(f.kb.graph.num_nodes(), ctx.num_keywords());
  ThreadPool pool(1);
  PhaseTimings timings;
  BottomUpSearch(ctx, opts, &pool, &state, &timings, /*gpu_style=*/false);
  const std::vector<CentralCandidate>& centrals = state.centrals();
  ASSERT_FALSE(centrals.empty());

  StateHitLevels hits(state);
  KeywordMaskView mask{state.keyword_mask_words(), state.keyword_stamps(),
                       state.epoch()};
  ExtractionScratchPool scratch_pool;
  StateCandidateBuilder builder(ctx, opts, hits, mask, centrals,
                                &scratch_pool, /*max_workers=*/1);

  // Warm pass: sizes every scratch buffer and every output AnswerGraph.
  std::vector<AnswerGraph> outs(centrals.size());
  for (size_t i = 0; i < centrals.size(); ++i) {
    builder.Build(0, i, &outs[i]);
  }

  // Steady-state pass: rebuild every candidate into the warm outputs.
  const size_t before = g_alloc_count.load();
  for (size_t i = 0; i < centrals.size(); ++i) {
    builder.Build(0, i, &outs[i]);
  }
  const size_t allocs = g_alloc_count.load() - before;
  EXPECT_EQ(allocs, 0u) << "steady-state extraction of " << centrals.size()
                        << " candidates allocated " << allocs << " times";
  // The answers themselves must be real (warm rebuild produced real output).
  for (const AnswerGraph& a : outs) {
    testing::CheckAnswerInvariants(f.kb.graph, a, ctx.num_keywords());
  }
}

// The scratch pool reuses idle scratches across queries exactly like the
// SearchState pool (lease discipline, keyed on num_nodes).

TEST(TopDownScratchTest, ScratchPoolReusesAcrossQueries) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 3);
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 1;
  SearchStatePool state_pool;
  ExtractionScratchPool scratch_pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  engine.SetStatePool(&state_pool);
  engine.SetScratchPool(&scratch_pool);

  for (const auto& q : queries) {
    auto res = engine.SearchKeywords(q, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }
  // One worker -> one scratch created on the first query, reused afterwards.
  EXPECT_EQ(scratch_pool.created(), 1u);
  EXPECT_GE(scratch_pool.reused(), queries.size() - 1);
  EXPECT_EQ(scratch_pool.idle_scratches(), 1u);
}

}  // namespace
}  // namespace wikisearch
