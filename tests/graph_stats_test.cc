#include <gtest/gtest.h>

#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/graph_stats.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using ::wikisearch::testing::MakeGraph;

TEST(DegreeStatsTest, HandGraph) {
  // Path 0-1-2: degrees 1, 2, 1 (bi-directed).
  KnowledgeGraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_NEAR(stats.mean, 4.0 / 3.0, 1e-12);
  size_t total = 0;
  for (size_t c : stats.log2_histogram) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(DegreeStatsTest, InDegreeOnly) {
  KnowledgeGraph g = MakeGraph(3, {{0, 2}, {1, 2}});
  DegreeStats stats = ComputeDegreeStats(g, /*in_only=*/true);
  EXPECT_EQ(stats.max, 2u);  // node 2
  EXPECT_EQ(stats.min, 0u);  // nodes 0, 1
}

TEST(DegreeStatsTest, EmptyGraphSafe) {
  KnowledgeGraph g = MakeGraph(0, {});
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max, 0u);
}

TEST(LabelHistogramTest, CountsAndOrders) {
  GraphBuilder b;
  b.AddTriple("a", "common", "b");
  b.AddTriple("b", "common", "c");
  b.AddTriple("c", "rare", "a");
  KnowledgeGraph g = std::move(b).Build();
  auto hist = LabelHistogram(g);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(g.LabelName(hist[0].label), "common");
  EXPECT_EQ(hist[0].count, 2u);
  EXPECT_EQ(hist[1].count, 1u);
  EXPECT_EQ(LabelHistogram(g, 1).size(), 1u);
}

TEST(WeightStatsTest, QuantilesAndHeavyCount) {
  KnowledgeGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.SetNodeWeights({0.0, 0.2, 0.6, 1.0}).ok());
  WeightStats stats = ComputeWeightStats(g);
  EXPECT_NEAR(stats.mean, 0.45, 1e-12);
  EXPECT_EQ(stats.max, 1.0);
  EXPECT_EQ(stats.heavy_nodes, 2u);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p99);
}

TEST(GraphStatsTest, GeneratorHasPowerLawTail) {
  gen::WikiGenConfig cfg;
  cfg.num_entities = 3000;
  cfg.seed = 77;
  gen::GeneratedKb kb = gen::Generate(cfg);
  DegreeStats in = ComputeDegreeStats(kb.graph, /*in_only=*/true);
  // Heavy tail: the max in-degree dwarfs the mean (summary hubs + PA).
  EXPECT_GT(static_cast<double>(in.max), 30.0 * in.mean);
}

TEST(GraphStatsTest, DescribeMentionsEverything) {
  KnowledgeGraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  AttachNodeWeights(&g);
  g.SetAverageDistance(1.3, 0.4);
  std::string s = DescribeGraph(g);
  EXPECT_NE(s.find("nodes: 3"), std::string::npos);
  EXPECT_NE(s.find("degree:"), std::string::npos);
  EXPECT_NE(s.find("top predicates:"), std::string::npos);
  EXPECT_NE(s.find("weights:"), std::string::npos);
  EXPECT_NE(s.find("avg shortest distance"), std::string::npos);
}

}  // namespace
}  // namespace wikisearch
