#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/graph_algos.h"
#include "gst/dpbf.h"
#include "gst/rclique.h"
#include "test_util.h"

namespace wikisearch::gst {
namespace {

struct PathKb {
  // left keyword -- m1 -- m2 -- right keyword, plus a hub shortcut of
  // length 2 (left - hub - right).
  PathKb() {
    GraphBuilder b;
    b.AddTriple("left alpha", "r", "mid one");
    b.AddTriple("mid one", "r", "mid two");
    b.AddTriple("mid two", "r", "right omega");
    b.AddTriple("left alpha", "r", "hub node");
    b.AddTriple("hub node", "r", "right omega");
    graph = std::move(b).Build();
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

// ------------------------------- DPBF ----------------------------------------

TEST(DpbfTest, FindsOptimalSteinerTree) {
  PathKb kb;
  DpbfEngine engine(&kb.graph, &kb.index);
  DpbfOptions opts;
  opts.top_k = 1;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->answers.size(), 1u);
  // Optimal tree uses the hub shortcut: 2 edges, cost 2.
  EXPECT_EQ(res->answers[0].score, 2.0);
  EXPECT_TRUE(
      res->answers[0].ContainsNode(kb.graph.FindNode("hub node")));
  wikisearch::testing::CheckAnswerInvariants(kb.graph, res->answers[0], 2);
}

TEST(DpbfTest, MergeAtInternalRoot) {
  // Star: three keyword leaves around a center; the optimal 3-keyword tree
  // is the star with cost 3, rooted where subtrees merge.
  GraphBuilder b;
  b.AddTriple("leaf aaa", "r", "center");
  b.AddTriple("leaf bbb", "r", "center");
  b.AddTriple("leaf ccc", "r", "center");
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  DpbfEngine engine(&g, &index);
  DpbfOptions opts;
  opts.top_k = 1;
  auto res = engine.SearchKeywords({"aaa", "bbb", "ccc"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->answers.size(), 1u);
  EXPECT_EQ(res->answers[0].score, 3.0);
  EXPECT_EQ(res->answers[0].nodes.size(), 4u);
  wikisearch::testing::CheckAnswerInvariants(g, res->answers[0], 3);
}

TEST(DpbfTest, TopKDistinctRootsSortedByCost) {
  PathKb kb;
  DpbfEngine engine(&kb.graph, &kb.index);
  DpbfOptions opts;
  opts.top_k = 5;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->answers.size(), 1u);
  for (size_t i = 1; i < res->answers.size(); ++i) {
    EXPECT_LE(res->answers[i - 1].score, res->answers[i].score);
    EXPECT_NE(res->answers[i - 1].central, res->answers[i].central);
  }
}

TEST(DpbfTest, SingleKeywordIsZeroCostNode) {
  PathKb kb;
  DpbfEngine engine(&kb.graph, &kb.index);
  DpbfOptions opts;
  opts.top_k = 2;
  auto res = engine.SearchKeywords({"alpha"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->answers.empty());
  EXPECT_EQ(res->answers[0].score, 0.0);
  EXPECT_EQ(res->answers[0].nodes.size(), 1u);
}

TEST(DpbfTest, KeywordCapEnforced) {
  PathKb kb;
  DpbfEngine engine(&kb.graph, &kb.index);
  DpbfOptions opts;
  opts.max_keywords = 1;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(DpbfTest, EmptyAndUnknownQueriesRejected) {
  PathKb kb;
  DpbfEngine engine(&kb.graph, &kb.index);
  EXPECT_FALSE(engine.SearchKeywords({}, DpbfOptions{}).ok());
  EXPECT_EQ(engine.SearchKeywords({"zzz"}, DpbfOptions{}).status().code(),
            StatusCode::kNotFound);
}

TEST(DpbfTest, AgreesWithBruteForceOnRandomGraphs) {
  // Brute-force check of the optimal cost: enumerate all trees is too much,
  // but on tiny graphs the optimum equals min over root v of the optimal
  // merge of per-keyword shortest distances *when the groups are single
  // nodes* (then GST = Steiner tree of 2 terminals = shortest path).
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    size_t n = 6 + rng.Uniform(8);
    std::vector<std::pair<int, int>> edges;
    for (size_t i = 1; i < n; ++i) {
      edges.push_back({static_cast<int>(rng.Uniform(i)),
                       static_cast<int>(i)});
    }
    GraphBuilder b;
    for (size_t i = 0; i < n; ++i) {
      std::string name = "n" + std::to_string(i);
      if (i == 0) name += " srcterm";
      if (i == n - 1) name += " dstterm";
      b.AddNode(name);
    }
    LabelId l = b.AddLabel("r");
    for (auto [u, v] : edges) {
      ASSERT_TRUE(
          b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), l).ok());
    }
    KnowledgeGraph g = std::move(b).Build();
    InvertedIndex index = InvertedIndex::Build(g);
    DpbfEngine engine(&g, &index);
    DpbfOptions opts;
    opts.top_k = 1;
    auto res = engine.SearchKeywords({"srcterm", "dstterm"}, opts);
    ASSERT_TRUE(res.ok());
    auto dist = BfsDistances(g, 0);
    ASSERT_EQ(res->answers.size(), 1u);
    EXPECT_EQ(res->answers[0].score, static_cast<double>(dist[n - 1]))
        << "round " << round;
  }
}

// ------------------------------ r-clique --------------------------------------

TEST(RcliqueTest, FindsCliqueWithinRadius) {
  PathKb kb;
  RcliqueEngine engine(&kb.graph, &kb.index);
  RcliqueOptions opts;
  opts.r = 2;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->answers.empty());
  // left alpha and right omega are 2 hops apart via the hub.
  EXPECT_EQ(res->answers[0].score, 2.0);
  wikisearch::testing::CheckAnswerInvariants(kb.graph, res->answers[0], 2);
}

TEST(RcliqueTest, RadiusTooSmallYieldsNothing) {
  PathKb kb;
  RcliqueEngine engine(&kb.graph, &kb.index);
  RcliqueOptions opts;
  opts.r = 1;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->answers.empty());
}

TEST(RcliqueTest, PairwiseConstraintVerified) {
  // Triangle-ish: a and b are close to the seed but 2r apart from each
  // other -> must be rejected when r = 2.
  GraphBuilder b;
  b.AddTriple("seed kwx", "r", "path1");
  b.AddTriple("path1", "r", "far kwy");
  b.AddTriple("seed kwx", "r", "path2");
  b.AddTriple("path2", "r", "other kwz");
  // far kwy and other kwz are 4 apart (via seed), > r = 2.
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  RcliqueEngine engine(&g, &index);
  RcliqueOptions opts;
  opts.r = 2;
  auto res = engine.SearchKeywords({"kwx", "kwy", "kwz"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->answers.empty());
  opts.r = 4;
  res = engine.SearchKeywords({"kwx", "kwy", "kwz"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->answers.empty());
  // weight = d(x,y) + d(x,z) + d(y,z) = 2 + 2 + 4.
  EXPECT_EQ(res->answers[0].score, 8.0);
}

TEST(RcliqueTest, AnswersAreConnectedTrees) {
  PathKb kb;
  RcliqueEngine engine(&kb.graph, &kb.index);
  RcliqueOptions opts;
  opts.r = 3;
  auto res = engine.SearchKeywords({"alpha", "mid", "omega"}, opts);
  ASSERT_TRUE(res.ok());
  for (const AnswerGraph& a : res->answers) {
    wikisearch::testing::CheckAnswerInvariants(kb.graph, a, 3);
  }
}

TEST(RcliqueTest, ErrorsOnBadInput) {
  PathKb kb;
  RcliqueEngine engine(&kb.graph, &kb.index);
  EXPECT_FALSE(engine.SearchKeywords({}, RcliqueOptions{}).ok());
  EXPECT_FALSE(engine.SearchKeywords({"zzz"}, RcliqueOptions{}).ok());
}

}  // namespace
}  // namespace wikisearch::gst
