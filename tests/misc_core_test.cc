// Cross-cutting core tests: GPU-style vs CPU-style stage-1 produce
// identical full state (every hitting level, not just answers), answer
// formatting, options plumbing, and state accounting.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bottom_up.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using ::wikisearch::testing::MakeGraph;

class GpuStyleStateEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GpuStyleStateEquivalenceTest, FullMatrixIdentical) {
  Rng rng(GetParam() * 31 + 5);
  const size_t n = 40;
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng.Uniform(i)), static_cast<int>(i)});
  }
  for (size_t e = 0; e < 2 * n; ++e) {
    edges.push_back({static_cast<int>(rng.Uniform(n)),
                     static_cast<int>(rng.Uniform(n))});
  }
  KnowledgeGraph g = MakeGraph(n, edges);
  std::vector<double> w(n);
  for (auto& x : w) x = rng.UniformDouble();
  ASSERT_TRUE(g.SetNodeWeights(w).ok());

  std::vector<std::vector<NodeId>> groups(3);
  for (auto& grp : groups) {
    grp.push_back(static_cast<NodeId>(rng.Uniform(n)));
    grp.push_back(static_cast<NodeId>(rng.Uniform(n)));
    std::sort(grp.begin(), grp.end());
    grp.erase(std::unique(grp.begin(), grp.end()), grp.end());
  }

  QueryContext ctx(g, {}, groups, ActivationMap(2.0, 0.3), 15);
  SearchOptions opts;
  opts.top_k = 1000;  // run to exhaustion so every level executes

  ThreadPool pool(3);
  SearchState cpu_state(n, groups.size());
  SearchState gpu_state(n, groups.size());
  PhaseTimings t1, t2;
  BottomUpResult r1 =
      BottomUpSearch(ctx, opts, &pool, &cpu_state, &t1, /*gpu_style=*/false);
  BottomUpResult r2 =
      BottomUpSearch(ctx, opts, &pool, &gpu_state, &t2, /*gpu_style=*/true);

  EXPECT_EQ(r1.levels, r2.levels);
  EXPECT_EQ(r1.frontier_exhausted, r2.frontier_exhausted);
  for (NodeId v = 0; v < n; ++v) {
    for (size_t i = 0; i < groups.size(); ++i) {
      EXPECT_EQ(cpu_state.Hit(v, i), gpu_state.Hit(v, i))
          << "node " << v << " keyword " << i;
    }
    EXPECT_EQ(cpu_state.IsCentral(v), gpu_state.IsCentral(v)) << v;
  }
  ASSERT_EQ(cpu_state.centrals().size(), gpu_state.centrals().size());
  for (size_t i = 0; i < cpu_state.centrals().size(); ++i) {
    EXPECT_EQ(cpu_state.centrals()[i].node, gpu_state.centrals()[i].node);
    EXPECT_EQ(cpu_state.centrals()[i].depth, gpu_state.centrals()[i].depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuStyleStateEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(SearchStateTest, RunningStorageGrowsWithKeywords) {
  SearchState small(1000, 2);
  SearchState large(1000, 8);
  EXPECT_GT(large.RunningStorageBytes(), small.RunningStorageBytes());
  // One byte per (node, keyword), as the paper sizes M.
  EXPECT_GE(large.RunningStorageBytes() - small.RunningStorageBytes(),
            1000u * 6);
}

TEST(SearchStateTest, InitSeedsSourcesAndMasks) {
  SearchState state(10, 2);
  state.Init({{1, 3}, {3, 5}});
  EXPECT_EQ(state.Hit(1, 0), 0);
  EXPECT_EQ(state.Hit(3, 0), 0);
  EXPECT_EQ(state.Hit(3, 1), 0);
  EXPECT_EQ(state.Hit(5, 1), 0);
  EXPECT_EQ(state.Hit(5, 0), kLevelInf);
  EXPECT_EQ(state.KeywordMask(3), 0b11u);
  EXPECT_EQ(state.KeywordMask(1), 0b01u);
  EXPECT_TRUE(state.IsKeywordNode(5));
  EXPECT_FALSE(state.IsKeywordNode(0));
  EXPECT_TRUE(state.IsFrontierFlagged(1));
  EXPECT_FALSE(state.IsFrontierFlagged(0));
}

TEST(SearchStateDeathTest, RejectsTooManyKeywords) {
  EXPECT_DEATH(SearchState(10, 65), "CHECK");
}

TEST(FormatAnswerTest, RendersNamesLabelsAndTags) {
  GraphBuilder b;
  b.AddTriple("alpha node", "linked to", "beta node");
  KnowledgeGraph g = std::move(b).Build();
  ASSERT_TRUE(g.SetNodeWeights({0, 0}).ok());
  AnswerGraph a;
  a.central = 1;
  a.depth = 1;
  a.score = 0.5;
  a.nodes = {0, 1};
  a.edges = {AnswerEdge{0, 1, 0}};
  a.keyword_nodes = {{0}};
  std::string s = FormatAnswer(g, a, {"alpha"});
  EXPECT_NE(s.find("beta node"), std::string::npos);
  EXPECT_NE(s.find("linked to"), std::string::npos);
  EXPECT_NE(s.find("{alpha}"), std::string::npos);
  EXPECT_NE(s.find("depth=1"), std::string::npos);
}

TEST(EngineKindTest, AllNamesDistinct) {
  EXPECT_STREQ(EngineKindName(EngineKind::kSequential), "Sequential");
  EXPECT_STREQ(EngineKindName(EngineKind::kCpuParallel), "CPU-Par");
  EXPECT_STREQ(EngineKindName(EngineKind::kCpuDynamic), "CPU-Par-d");
  EXPECT_STREQ(EngineKindName(EngineKind::kGpuSim), "GPU-Par(sim)");
}

TEST(PhaseTimingsTest, AccumulateAndAverage) {
  PhaseTimings a, b;
  a.init_ms = 1;
  a.expansion_ms = 4;
  a.levels = 3;
  b.init_ms = 3;
  b.expansion_ms = 6;
  b.levels = 5;
  a += b;
  EXPECT_EQ(a.init_ms, 4);
  EXPECT_EQ(a.expansion_ms, 10);
  EXPECT_EQ(a.levels, 8);
  a /= 2.0;
  EXPECT_EQ(a.init_ms, 2);
  EXPECT_EQ(a.expansion_ms, 5);
}

TEST(MaxCentralCandidatesTest, CapLimitsTopDownWork) {
  // Single keyword: every keyword node is a central candidate at level 0;
  // the cap bounds how many are carried into stage 2.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 19; ++i) edges.push_back({i, i + 1});
  KnowledgeGraph g = MakeGraph(20, edges);
  ASSERT_TRUE(g.SetNodeWeights(std::vector<double>(20, 0.0)).ok());
  g.SetAverageDistance(3.0, 0.5);
  InvertedIndex index = InvertedIndex::Build(g);

  SearchOptions opts;
  opts.top_k = 50;
  opts.max_central_candidates = 5;
  SearchEngine engine(&g, &index, opts);
  // Every node's name contains "n<i>" plus the shared token "tok"? MakeGraph
  // names are "n<i>", unique; use a keyword matching many nodes instead:
  // search for all node names via a common prefix is not possible, so use
  // two keywords whose sources chain along the path.
  Result<SearchResult> res = engine.SearchKeywords({"n1", "n19"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->stats.num_centrals, 5u);
}

}  // namespace
}  // namespace wikisearch
