// SearchEngine facade tests: input validation, free-text analysis, option
// handling, reported statistics.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

struct SmallKb {
  SmallKb() {
    GraphBuilder b;
    b.AddTriple("xml parsing toolkit", "part of", "data tools");
    b.AddTriple("rdf storage engine", "part of", "data tools");
    b.AddTriple("sql query planner", "part of", "data tools");
    b.AddTriple("xml schema validator", "uses", "xml parsing toolkit");
    b.AddTriple("rdf graph browser", "uses", "rdf storage engine");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 500, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(EngineTest, FreeTextSearchCoversKeywords) {
  SmallKb kb;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf sql");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->answers.empty());
  EXPECT_EQ(res->keywords.size(), 3u);
  for (const AnswerGraph& a : res->answers) {
    testing::CheckAnswerInvariants(kb.graph, a, 3);
  }
}

TEST(EngineTest, RequiresWeights) {
  GraphBuilder b;
  b.AddTriple("a node", "r", "b node");
  KnowledgeGraph g = std::move(b).Build();
  g.SetAverageDistance(1.0, 0.0);
  InvertedIndex index = InvertedIndex::Build(g);
  SearchEngine engine(&g, &index);
  Result<SearchResult> res = engine.Search("node");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, RequiresAverageDistance) {
  GraphBuilder b;
  b.AddTriple("a node", "r", "b node");
  KnowledgeGraph g = std::move(b).Build();
  AttachNodeWeights(&g);
  InvertedIndex index = InvertedIndex::Build(g);
  SearchEngine engine(&g, &index);
  Result<SearchResult> res = engine.Search("node");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, RejectsBadAlpha) {
  SmallKb kb;
  SearchOptions opts;
  opts.alpha = 1.5;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml", opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, RejectsEmptyQuery) {
  SmallKb kb;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("");
  EXPECT_FALSE(res.ok());
}

TEST(EngineTest, NoMatchesIsNotFound) {
  SmallKb kb;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("zzzqqqxxx");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, DroppedKeywordsReported) {
  SmallKb kb;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res =
      engine.SearchKeywords({"xml", "zzznothing"}, engine.default_options());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->stats.num_keywords_used, 1u);
  ASSERT_EQ(res->stats.dropped_keywords.size(), 1u);
  EXPECT_EQ(res->stats.dropped_keywords[0], "zzznothing");
}

TEST(EngineTest, TopKLimitsAnswerCount) {
  SmallKb kb;
  SearchOptions opts;
  opts.top_k = 1;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf", opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->answers.size(), 1u);
}

TEST(EngineTest, AnswersSortedByScore) {
  SmallKb kb;
  SearchOptions opts;
  opts.top_k = 10;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf", opts);
  ASSERT_TRUE(res.ok());
  for (size_t i = 1; i < res->answers.size(); ++i) {
    EXPECT_LE(res->answers[i - 1].score, res->answers[i].score);
  }
}

TEST(EngineTest, StatsPopulated) {
  SmallKb kb;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf");
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->stats.num_centrals, 0u);
  EXPECT_GT(res->stats.running_storage_bytes, 0u);
  EXPECT_GT(res->stats.pre_storage_bytes, 0u);
  EXPECT_GE(res->timings.total_ms, 0.0);
  EXPECT_GT(res->stats.peak_frontier, 0u);
}

TEST(EngineTest, GpuSimReportsTransferTime) {
  SmallKb kb;
  SearchOptions opts;
  opts.engine = EngineKind::kGpuSim;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf", opts);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->timings.transfer_ms, 0.0);
}

TEST(EngineTest, MaxLevelOptionRespected) {
  SmallKb kb;
  SearchOptions opts;
  opts.max_level = 1;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf sql", opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->stats.levels, 1);
  for (const AnswerGraph& a : res->answers) EXPECT_LE(a.depth, 1);
}

TEST(EngineTest, ActivationAblationStillSearches) {
  SmallKb kb;
  SearchOptions opts;
  opts.enable_activation = false;
  SearchEngine engine(&kb.graph, &kb.index);
  Result<SearchResult> res = engine.Search("xml rdf", opts);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->answers.empty());
}

}  // namespace
}  // namespace wikisearch
