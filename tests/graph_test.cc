#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/csr_graph.h"
#include "graph/distance_sampler.h"
#include "graph/graph_algos.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using ::wikisearch::testing::MakeGraph;

KnowledgeGraph TriangleWithTail() {
  // a -r1-> b, b -r2-> c, c -r1-> a, c -r1-> d
  GraphBuilder b;
  b.AddTriple("a", "r1", "b");
  b.AddTriple("b", "r2", "c");
  b.AddTriple("c", "r1", "a");
  b.AddTriple("c", "r1", "d");
  return std::move(b).Build();
}

TEST(GraphBuilderTest, NodesDedupByName) {
  GraphBuilder b;
  NodeId x = b.AddNode("x");
  NodeId y = b.AddNode("y");
  EXPECT_NE(x, y);
  EXPECT_EQ(b.AddNode("x"), x);
  EXPECT_EQ(b.num_nodes(), 2u);
}

TEST(GraphBuilderTest, RejectsBadEdges) {
  GraphBuilder b;
  b.AddNode("x");
  LabelId l = b.AddLabel("r");
  EXPECT_FALSE(b.AddEdge(0, 5, l).ok());
  EXPECT_FALSE(b.AddEdge(0, 0, 9).ok());
  EXPECT_TRUE(b.AddEdge(0, 0, l).ok());  // self loop is legal
}

TEST(CsrGraphTest, BidirectedAdjacency) {
  KnowledgeGraph g = TriangleWithTail();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_triples(), 4u);
  EXPECT_EQ(g.num_adjacency_entries(), 8u);

  NodeId a = g.FindNode("a"), b = g.FindNode("b"), c = g.FindNode("c"),
         d = g.FindNode("d");
  ASSERT_NE(a, kInvalidNode);
  // a: out-edge to b (forward), in-edge from c (reverse entry).
  EXPECT_EQ(g.Degree(a), 2u);
  EXPECT_EQ(g.InDegree(a), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
  EXPECT_EQ(g.InDegree(c), 1u);
  EXPECT_EQ(g.InDegree(d), 1u);
  EXPECT_EQ(g.Degree(c), 3u);

  bool saw_forward_ab = false, saw_reverse_ca = false;
  for (const AdjEntry& e : g.Neighbors(a)) {
    if (e.target == b && !e.reverse) saw_forward_ab = true;
    if (e.target == c && e.reverse) saw_reverse_ca = true;
  }
  EXPECT_TRUE(saw_forward_ab);
  EXPECT_TRUE(saw_reverse_ca);
}

TEST(CsrGraphTest, AdjacencySortedByTarget) {
  KnowledgeGraph g = MakeGraph(6, {{0, 5}, {0, 2}, {0, 4}, {0, 1}, {3, 0}});
  auto adj = g.Neighbors(0);
  ASSERT_EQ(adj.size(), 5u);
  for (size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LE(adj[i - 1].target, adj[i].target);
  }
}

TEST(CsrGraphTest, FindNodeMissing) {
  KnowledgeGraph g = TriangleWithTail();
  EXPECT_EQ(g.FindNode("zzz"), kInvalidNode);
}

TEST(CsrGraphTest, SetNodeWeightsValidatesSize) {
  KnowledgeGraph g = TriangleWithTail();
  EXPECT_FALSE(g.SetNodeWeights({0.1, 0.2}).ok());
  EXPECT_TRUE(g.SetNodeWeights({0.1, 0.2, 0.3, 0.4}).ok());
  EXPECT_DOUBLE_EQ(g.NodeWeight(1), 0.2);
  EXPECT_TRUE(g.has_weights());
}

TEST(CsrGraphTest, MultiEdgesPreserved) {
  GraphBuilder b;
  b.AddTriple("x", "r1", "y");
  b.AddTriple("x", "r2", "y");
  b.AddTriple("x", "r1", "y");  // duplicate triple kept (RDF multigraph)
  KnowledgeGraph g = std::move(b).Build();
  EXPECT_EQ(g.num_triples(), 3u);
  EXPECT_EQ(g.Degree(g.FindNode("x")), 3u);
}

TEST(CsrGraphTest, PreStorageBytesNonTrivial) {
  KnowledgeGraph g = TriangleWithTail();
  EXPECT_GT(g.PreStorageBytes(), 8u * sizeof(AdjEntry));
}

// ------------------------------ Graph IO ------------------------------------

TEST(GraphIoTest, BinaryRoundTrip) {
  KnowledgeGraph g = TriangleWithTail();
  g.SetNodeWeights({0.0, 0.25, 0.5, 1.0});
  g.SetAverageDistance(1.5, 0.3);
  std::string path = ::testing::TempDir() + "/ws_roundtrip.wskg";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  Result<KnowledgeGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_triples(), g.num_triples());
  EXPECT_EQ(loaded->FindNode("c"), g.FindNode("c"));
  EXPECT_DOUBLE_EQ(loaded->NodeWeight(3), 1.0);
  EXPECT_DOUBLE_EQ(loaded->average_distance(), 1.5);
  EXPECT_EQ(loaded->LabelName(0), g.LabelName(0));
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/ws_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a graph at all", f);
  std::fclose(f);
  Result<KnowledgeGraph> loaded = LoadGraph(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  Result<KnowledgeGraph> loaded = LoadGraph("/nonexistent/path.wskg");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, TsvRoundTrip) {
  KnowledgeGraph g = TriangleWithTail();
  std::string path = ::testing::TempDir() + "/ws_triples.tsv";
  ASSERT_TRUE(SaveTriplesTsv(g, path).ok());
  Result<KnowledgeGraph> loaded = LoadTriplesTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), g.num_triples());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_NE(loaded->FindNode("d"), kInvalidNode);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TsvRejectsMalformedLine) {
  std::string path = ::testing::TempDir() + "/ws_bad.tsv";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("a\tr\tb\nno_tabs_here\n", f);
  std::fclose(f);
  Result<KnowledgeGraph> loaded = LoadTriplesTsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, TsvSkipsCommentsAndBlank) {
  std::string path = ::testing::TempDir() + "/ws_comments.tsv";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("# header\n\na\tr\tb\n", f);
  std::fclose(f);
  Result<KnowledgeGraph> loaded = LoadTriplesTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), 1u);
  std::remove(path.c_str());
}

// ----------------------------- Graph algos ----------------------------------

TEST(GraphAlgosTest, BfsDistancesOnPath) {
  KnowledgeGraph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(g, 0);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(GraphAlgosTest, BfsTraversesBothDirections) {
  // Directed 0 -> 1; BFS from 1 must still reach 0 (bi-directed model).
  KnowledgeGraph g = MakeGraph(2, {{0, 1}});
  auto dist = BfsDistances(g, 1);
  EXPECT_EQ(dist[0], 1u);
}

TEST(GraphAlgosTest, UnreachableMarked) {
  KnowledgeGraph g = MakeGraph(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(GraphAlgosTest, MultiSourceTakesNearest) {
  KnowledgeGraph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto dist = BfsDistances(g, std::vector<NodeId>{0, 5});
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[4], 1u);
}

TEST(GraphAlgosTest, ConnectedComponents) {
  KnowledgeGraph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(info.largest_size, 3u);
  EXPECT_EQ(info.component[0], info.component[2]);
  EXPECT_NE(info.component[0], info.component[3]);
}

// --------------------------- Distance sampler -------------------------------

TEST(DistanceSamplerTest, ExactOnCompleteGraph) {
  // K4: every pair at distance 1.
  KnowledgeGraph g =
      MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  DistanceSample s = SampleAverageDistance(g, 1000, 1);
  EXPECT_NEAR(s.mean, 1.0, 1e-9);
  EXPECT_NEAR(s.deviation, 0.0, 1e-9);
  EXPECT_GT(s.pairs, 0u);
}

TEST(DistanceSamplerTest, PathGraphMeanPlausible) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 20; ++i) edges.push_back({i, i + 1});
  KnowledgeGraph g = MakeGraph(21, edges);
  DistanceSample s = SampleAverageDistance(g, 4000, 7);
  // True average pair distance of P_21 is ~7.3; sampling should be close.
  EXPECT_GT(s.mean, 5.0);
  EXPECT_LT(s.mean, 10.0);
  EXPECT_GT(s.deviation, 1.0);
}

TEST(DistanceSamplerTest, DeterministicInSeed) {
  KnowledgeGraph g = MakeGraph(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                    {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 0}});
  DistanceSample a = SampleAverageDistance(g, 500, 3);
  DistanceSample b = SampleAverageDistance(g, 500, 3);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.deviation, b.deviation);
}

TEST(DistanceSamplerTest, AttachSetsGraphFields) {
  KnowledgeGraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  AttachAverageDistance(&g, 200, 11);
  EXPECT_GT(g.average_distance(), 0.0);
}

TEST(DistanceSamplerTest, TinyGraphSafe) {
  KnowledgeGraph g = MakeGraph(1, {});
  DistanceSample s = SampleAverageDistance(g, 100, 1);
  EXPECT_EQ(s.pairs, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace wikisearch
