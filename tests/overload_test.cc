// Overload behavior of the HTTP service: admission control sheds with 429,
// the connection cap sheds with 503, worker threads stay bounded, and the
// retrying client rides out transient shedding. The headline scenario from
// the robustness work: 64 concurrent clients against a queue depth of 4 must
// neither hang nor crash, and every request gets a definitive answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/search_service.h"

namespace wikisearch::server {
namespace {

struct ServiceFixture {
  ServiceFixture() {
    GraphBuilder b;
    b.AddTriple("xml toolkit", "part of", "data tools");
    b.AddTriple("rdf engine", "part of", "data tools");
    b.AddTriple("sql planner", "part of", "data tools");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 100, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(OverloadTest, SixtyFourClientsVersusQueueDepthFour) {
  ServiceFixture f;
  // Make every search hold the engine for a few ms so the queue actually
  // builds up; the fault hook is the sanctioned way to stall the engine.
  SearchOptions defaults;
  defaults.engine = EngineKind::kSequential;
  defaults.fault_injection = [](const char* point) {
    if (std::string_view(point) == "bottomup:level") {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  };
  SearchService service(&f.graph, &f.index, defaults);
  service.SetQueueDepth(4);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 64;
  std::atomic<int> ok200{0}, shed429{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Distinct k per client defeats the response cache, so every request
      // reaches the engine (or the admission gate in front of it).
      auto resp = HttpGet(server.port(),
                          "/search?q=xml+tools&k=" + std::to_string(i + 1));
      if (!resp.ok()) {
        other.fetch_add(1);
      } else if (resp->status == 200) {
        ok200.fetch_add(1);
      } else if (resp->status == 429) {
        shed429.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every request got a definitive 200 or 429 — nothing hung, nothing
  // failed at the transport, and the counters reconcile exactly.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok200.load() + shed429.load(), kClients);
  EXPECT_GT(ok200.load(), 0);  // the admitted trickle still succeeds
  EXPECT_EQ(service.shed_requests(), static_cast<uint64_t>(shed429.load()));
  // Admitted searches never exceeded the configured depth.
  EXPECT_LE(service.queue_high_water_mark(), 4u);

  // A /metrics scrape over the same server must agree exactly with the
  // client-observed counts — the registry is the one source behind both the
  // accessors above and the exposition.
  auto metrics = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  const std::string& out = metrics->body;
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_shed_total"),
            static_cast<double>(shed429.load()));
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_queries_total"),
            static_cast<double>(ok200.load()));
  auto hwm = obs::FindMetricValue(out, "ws_server_queue_high_water_mark");
  ASSERT_TRUE(hwm.has_value());
  EXPECT_EQ(*hwm, static_cast<double>(service.queue_high_water_mark()));
  EXPECT_LE(*hwm, 4.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_queue_depth"), 4.0);

  // The stage-2 candidate accounting survives overload untouched: even with
  // most requests shed and the engine stalled mid-level, the scraped
  // counters partition the centrals counter exactly.
  auto centrals = obs::FindMetricValue(out, "ws_search_centrals_total");
  auto extracted =
      obs::FindMetricValue(out, "ws_search_candidates_extracted_total");
  auto pruned = obs::FindMetricValue(out, "ws_search_candidates_pruned_total");
  auto skipped =
      obs::FindMetricValue(out, "ws_search_candidates_skipped_total");
  ASSERT_TRUE(centrals.has_value());
  ASSERT_TRUE(extracted.has_value());
  ASSERT_TRUE(pruned.has_value());
  ASSERT_TRUE(skipped.has_value());
  EXPECT_EQ(*extracted + *pruned + *skipped, *centrals);

  server.Stop();
  // Stop joins everything: no worker thread survives the server.
  EXPECT_EQ(server.live_worker_threads(), 0u);
  EXPECT_EQ(server.active_connections(), 0u);
}

TEST(OverloadTest, ConnectionCapShedsWith503) {
  HttpServer server;
  server.SetMaxConnections(2);
  std::atomic<int> in_handler{0};
  server.Route("/slow", [&](const HttpRequest&) {
    in_handler.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return HttpResponse::Text(200, "done\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 8;
  std::atomic<int> ok200{0}, shed503{0}, other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      auto resp = HttpGet(server.port(), "/slow");
      if (!resp.ok()) {
        other.fetch_add(1);
      } else if (resp->status == 200) {
        ok200.fetch_add(1);
      } else if (resp->status == 503) {
        shed503.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  // While the slow handlers run, the live thread count stays within the cap
  // (plus none for shed connections, which are answered from the accept
  // loop).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(server.active_connections(), 2u);
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok200.load() + shed503.load(), kClients);
  EXPECT_GT(ok200.load(), 0);
  EXPECT_EQ(server.rejected_connections(),
            static_cast<uint64_t>(shed503.load()));
  server.Stop();
  EXPECT_EQ(server.live_worker_threads(), 0u);
}

TEST(OverloadTest, ServerThreadsAreFixedNotPerConnection) {
  // The spirit of the old worker-reaping test, on the reactor: the thread
  // count must not scale with requests or connections. Where the
  // thread-per-connection server promised "finished workers get reaped",
  // the reactor promises something strictly stronger — the thread set is
  // fixed at Start and never grows at all.
  HttpServer server;
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());
  // The pool spins up within moments of Start; requests below synchronize
  // with it anyway.
  auto resp0 = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(resp0.ok());
  const size_t baseline = server.live_worker_threads();
  EXPECT_GT(baseline, 0u);
  for (int i = 0; i < 31; ++i) {
    auto resp = HttpGet(server.port(), "/ping");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
  }
  EXPECT_EQ(server.live_worker_threads(), baseline);
  // The served counter lands on the reactor thread just after the client
  // reads the last response; give it a beat.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.requests_served() < 32u &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.requests_served(), 32u);
  server.Stop();
  EXPECT_EQ(server.live_worker_threads(), 0u);
}

TEST(OverloadTest, RetryingClientRidesOutShedding) {
  HttpServer server;
  std::atomic<int> calls{0};
  server.Route("/flaky", [&](const HttpRequest&) {
    // Shed the first three attempts the way the admission gate would.
    if (calls.fetch_add(1) < 3) return HttpResponse::TooManyRequests(1);
    return HttpResponse::Text(200, "finally\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 4.0;
  auto res = HttpGetWithRetry(server.port(), "/flaky", policy);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->response.status, 200);
  EXPECT_EQ(res->attempts, 4);
  server.Stop();
}

TEST(OverloadTest, RetryExhaustionReportsResourceExhausted) {
  HttpServer server;
  server.Route("/always429", [](const HttpRequest&) {
    return HttpResponse::TooManyRequests(1);
  });
  ASSERT_TRUE(server.Start(0).ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 2.0;
  auto res = HttpGetWithRetry(server.port(), "/always429", policy);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  server.Stop();
}

TEST(OverloadTest, ShedResponseCarriesRetryAfter) {
  HttpResponse resp = HttpResponse::TooManyRequests(2);
  EXPECT_EQ(resp.status, 429);
  ASSERT_EQ(resp.extra_headers.size(), 1u);
  EXPECT_EQ(resp.extra_headers[0].first, "Retry-After");
  EXPECT_EQ(resp.extra_headers[0].second, "2");
}

TEST(OverloadTest, StatsExposeAdmissionCounters) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  service.SetQueueDepth(4);
  HttpRequest req;
  auto resp = service.HandleStats(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"shed_requests\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"timed_out_queries\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"degraded_answers\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"queue_high_water_mark\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"queue_depth\":4"), std::string::npos);
}

TEST(OverloadTest, DeadlineParamReachesEngineAndStats) {
  ServiceFixture f;
  SearchOptions defaults;
  defaults.engine = EngineKind::kSequential;
  // Stall the engine so a 1ms deadline reliably expires mid-search.
  defaults.fault_injection = [](const char* point) {
    if (std::string_view(point) == "bottomup:level") {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  SearchService service(&f.graph, &f.index, defaults);
  HttpRequest req;
  req.method = "GET";
  req.path = "/search";
  req.params["q"] = "xml tools";
  req.params["deadline_ms"] = "1";
  auto resp = service.HandleSearch(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"timed_out\":true"), std::string::npos);
  EXPECT_EQ(service.timed_out_queries(), 1u);
  EXPECT_EQ(service.degraded_answers(), 1u);

  // Degraded responses must not be cached: a second identical request
  // re-runs the engine rather than replaying the partial answer.
  auto again = service.HandleSearch(req);
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(service.cache().hits(), 0u);
  EXPECT_EQ(service.timed_out_queries(), 2u);
}

}  // namespace
}  // namespace wikisearch::server
