// SearchState reuse via SearchStatePool: a pooled state carries stale
// matrix cells, identifier stamps and hit masks from earlier queries, and
// the epoch scheme must make all of them invisible. Every test compares
// engine output through one reused state against a fresh-state run.
#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1200;
    cfg.num_summary_nodes = 6;
    cfg.num_topic_nodes = 14;
    cfg.num_communities = 7;
    cfg.vocab_size = 1500;
    cfg.seed = 7;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 2000, 7);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::vector<std::vector<std::string>> SampleQueries(const Fixture& f,
                                                    size_t count,
                                                    size_t max_terms,
                                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(max_terms - 1);
    for (size_t i = 0; i < 4 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  return queries;
}

void ExpectSameAnswers(const SearchResult& a, const SearchResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].central, b.answers[i].central) << label << " " << i;
    EXPECT_EQ(a.answers[i].depth, b.answers[i].depth) << label << " " << i;
    EXPECT_EQ(a.answers[i].nodes, b.answers[i].nodes) << label << " " << i;
    EXPECT_TRUE(a.answers[i].edges == b.answers[i].edges) << label << " " << i;
    EXPECT_NEAR(a.answers[i].score, b.answers[i].score, 1e-9)
        << label << " " << i;
  }
  EXPECT_EQ(a.stats.num_centrals, b.stats.num_centrals) << label;
  EXPECT_EQ(a.stats.levels, b.stats.levels) << label;
}

/// Runs `kws` on an engine with a throwaway pool, so the state is freshly
/// allocated — the ground truth a reused state must match.
SearchResult FreshRun(const Fixture& f, const std::vector<std::string>& kws,
                      const SearchOptions& opts) {
  SearchStatePool fresh_pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  engine.SetStatePool(&fresh_pool);
  Result<SearchResult> res = engine.SearchKeywords(kws, opts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return std::move(*res);
}

TEST(SearchStatePoolTest, CapacityRounding) {
  EXPECT_EQ(SearchStatePool::CapacityFor(1), 4u);
  EXPECT_EQ(SearchStatePool::CapacityFor(4), 4u);
  EXPECT_EQ(SearchStatePool::CapacityFor(5), 8u);
  EXPECT_EQ(SearchStatePool::CapacityFor(9), 16u);
  EXPECT_EQ(SearchStatePool::CapacityFor(33), 64u);
  EXPECT_EQ(SearchStatePool::CapacityFor(64), 64u);
}

TEST(SearchStatePoolTest, LeaseReturnsStateToPool) {
  SearchStatePool pool;
  {
    SearchStatePool::Lease lease = pool.Acquire(100, 3);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_EQ(lease->num_nodes(), 100u);
    EXPECT_EQ(lease->keyword_capacity(), 4u);
    EXPECT_EQ(pool.idle_states(), 0u);
  }
  EXPECT_EQ(pool.idle_states(), 1u);
  EXPECT_EQ(pool.created(), 1u);

  // Same key (2 rounds to capacity 4 as well) reuses the idle state.
  SearchState* first;
  {
    SearchStatePool::Lease lease = pool.Acquire(100, 2);
    first = lease.get();
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), 1u);

  // Different node count is a different shelf.
  {
    SearchStatePool::Lease lease = pool.Acquire(200, 2);
    EXPECT_NE(lease.get(), first);
  }
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.idle_states(), 2u);

  pool.Clear();
  EXPECT_EQ(pool.idle_states(), 0u);
}

TEST(SearchStatePoolTest, SameQueryTwiceThroughPooledState) {
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.engine = EngineKind::kCpuParallel;

  for (const auto& kws : SampleQueries(f, 4, 4, 11)) {
    SearchResult fresh = FreshRun(f, kws, opts);
    SearchStatePool pool;
    SearchEngine engine(&f.kb.graph, &f.index, opts);
    engine.SetStatePool(&pool);
    Result<SearchResult> first = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(first.ok());
    Result<SearchResult> second = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.reused(), 1u);
    ExpectSameAnswers(fresh, *first, "first run");
    ExpectSameAnswers(fresh, *second, "reused state");
  }
}

TEST(SearchStatePoolTest, DifferentQueriesThroughOnePooledState) {
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.engine = EngineKind::kCpuParallel;

  // Queries of 2..4 terms all round to capacity 4, so one state serves the
  // whole sequence; each reuse must look freshly initialized.
  auto queries = SampleQueries(f, 6, 4, 23);
  SearchStatePool pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  engine.SetStatePool(&pool);
  for (const auto& kws : queries) {
    Result<SearchResult> pooled = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(pooled.ok());
    ExpectSameAnswers(FreshRun(f, kws, opts), *pooled, "pooled");
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.reused(), queries.size() - 1);
}

TEST(SearchStatePoolTest, ReuseAcrossEngineKindsAndThreadCounts) {
  Fixture& f = SharedFixture();
  auto queries = SampleQueries(f, 3, 4, 31);
  SearchStatePool pool;
  SearchOptions base;
  base.top_k = 10;
  SearchEngine engine(&f.kb.graph, &f.index, base);
  engine.SetStatePool(&pool);

  // Mode transitions are the hard part of reuse: gpu-sim and the legacy
  // scan leave hit masks dirty without recording which nodes they touched;
  // the following buffered run must still see clean state.
  struct Step {
    EngineKind kind;
    int threads;
    bool buffers;
  };
  const Step steps[] = {
      {EngineKind::kCpuParallel, 4, true},
      {EngineKind::kGpuSim, 4, true},
      {EngineKind::kCpuParallel, 4, false},
      {EngineKind::kCpuParallel, 8, true},
      {EngineKind::kSequential, 1, true},
      {EngineKind::kCpuParallel, 2, true},
  };
  for (const auto& kws : queries) {
    for (const Step& s : steps) {
      SearchOptions opts = base;
      opts.engine = s.kind;
      opts.threads = s.threads;
      opts.use_frontier_buffers = s.buffers;
      Result<SearchResult> pooled = engine.SearchKeywords(kws, opts);
      ASSERT_TRUE(pooled.ok());
      ExpectSameAnswers(FreshRun(f, kws, opts), *pooled, "step");
    }
  }
  EXPECT_EQ(pool.created(), 1u);
}

TEST(SearchStatePoolTest, SmallKeywordCountMaskEdge) {
  // q < capacity: FullMask must cover exactly the active instances, or a
  // node hit by all q real keywords would never satisfy HitMask == FullMask
  // (stale capacity bits) / would qualify too early (missing bits).
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 8;
  opts.threads = 4;

  auto big = SampleQueries(f, 1, 4, 41)[0];     // up to 4 terms
  auto small = SampleQueries(f, 1, 3, 43)[0];   // 2..3 terms, same capacity
  SearchStatePool pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  engine.SetStatePool(&pool);

  Result<SearchResult> r1 = engine.SearchKeywords(big, opts);
  ASSERT_TRUE(r1.ok());
  Result<SearchResult> r2 = engine.SearchKeywords(small, opts);
  ASSERT_TRUE(r2.ok());
  ExpectSameAnswers(FreshRun(f, big, opts), *r1, "larger q");
  ExpectSameAnswers(FreshRun(f, small, opts), *r2, "smaller q reusing state");
}

TEST(SearchStatePoolTest, MaxCentralCandidatesTruncation) {
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.max_central_candidates = 3;  // force the truncation path

  auto queries = SampleQueries(f, 3, 4, 53);
  SearchStatePool pool;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  engine.SetStatePool(&pool);
  for (const auto& kws : queries) {
    Result<SearchResult> pooled = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(pooled.ok());
    EXPECT_LE(pooled->stats.num_centrals, 3u);
    ExpectSameAnswers(FreshRun(f, kws, opts), *pooled, "truncated");
  }
}

TEST(SearchStatePoolTest, ConcurrentAcquireRelease) {
  // Pool-level race coverage (run under -DWIKISEARCH_TSAN=ON via
  // `ctest -L tsan`): engines on separate threads hammer one shared pool.
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 6;
  opts.threads = 2;
  auto queries = SampleQueries(f, 4, 4, 61);
  std::vector<SearchResult> fresh;
  for (const auto& kws : queries) fresh.push_back(FreshRun(f, kws, opts));

  SearchStatePool pool;
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SearchEngine engine(&f.kb.graph, &f.index, opts);
      engine.SetStatePool(&pool);
      for (int round = 0; round < 3; ++round) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          Result<SearchResult> res = engine.SearchKeywords(queries[qi], opts);
          if (!res.ok() ||
              res->answers.size() != fresh[qi].answers.size()) {
            ++failures[static_cast<size_t>(t)];
            continue;
          }
          for (size_t i = 0; i < res->answers.size(); ++i) {
            if (res->answers[i].central != fresh[qi].answers[i].central ||
                res->answers[i].nodes != fresh[qi].answers[i].nodes) {
              ++failures[static_cast<size_t>(t)];
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[static_cast<size_t>(t)], 0);
  EXPECT_LE(pool.idle_states(), 4u);
  EXPECT_GT(pool.reused(), 0u);
}

TEST(SearchStatePoolTest, EpochAdvancesWithoutReallocation) {
  SearchStatePool pool;
  std::vector<std::vector<NodeId>> seeds{{0, 1}, {2}};
  SearchStatePool::Lease lease = pool.Acquire(10, 2);
  uint32_t last = lease->epoch();
  EXPECT_EQ(last, 0u);  // never initialized yet
  for (int i = 0; i < 5; ++i) {
    lease->Init(seeds);
    EXPECT_EQ(lease->epoch(), last + 1);
    last = lease->epoch();
    EXPECT_EQ(lease->Hit(0, 0), 0);
    EXPECT_EQ(lease->Hit(2, 1), 0);
    EXPECT_EQ(lease->Hit(5, 0), kLevelInf);
    EXPECT_TRUE(lease->IsKeywordNode(1));
    EXPECT_FALSE(lease->IsKeywordNode(5));
    EXPECT_EQ(lease->KeywordMask(0), 1ull);
    EXPECT_EQ(lease->KeywordMask(2), 2ull);
  }
}

}  // namespace
}  // namespace wikisearch
