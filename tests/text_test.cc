#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "text/inverted_index.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace wikisearch {
namespace {

// ------------------------------ Tokenizer -----------------------------------

TEST(TokenizerTest, SplitsOnNonAlnum) {
  auto t = Tokenize("Hello, world! foo-bar_baz 42");
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0], "Hello");
  EXPECT_EQ(t[1], "world");
  EXPECT_EQ(t[2], "foo");
  EXPECT_EQ(t[3], "bar");
  EXPECT_EQ(t[4], "baz");
  EXPECT_EQ(t[5], "42");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("...!!!,,,").empty());
}

TEST(AnalyzerTest, LowercasesAndStems) {
  auto t = AnalyzeText("Relational Databases");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "relat");
  EXPECT_EQ(t[1], "databas");
}

TEST(AnalyzerTest, RemovesStopwords) {
  auto t = AnalyzeText("the quick search of the graph");
  // "the", "of" removed.
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "quick");
  EXPECT_EQ(t[1], "search");
  EXPECT_EQ(t[2], "graph");
}

TEST(AnalyzerTest, LengthFilters) {
  AnalyzerOptions opts;
  opts.min_token_len = 3;
  auto t = AnalyzeText("ab abc", opts);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], "abc");
}

TEST(AnalyzerTest, OptionsCanDisableEverything) {
  AnalyzerOptions opts;
  opts.lowercase = false;
  opts.remove_stopwords = false;
  opts.stem = false;
  opts.min_token_len = 1;
  auto t = AnalyzeText("The Mining", opts);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "The");
  EXPECT_EQ(t[1], "Mining");
}

TEST(StopWordTest, KnownStopwords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_FALSE(IsStopWord("database"));
}

// ---------------------------- Porter stemmer --------------------------------

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReferenceVector) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStem(c.word), c.stem) << "word: " << c.word;
}

// Reference outputs from Porter's published sample vocabulary.
INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerEdge, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerEdge, MostlyIdempotent) {
  // Porter is not idempotent in general ("databases" -> "databas" ->
  // "databa"); what the engine relies on is that documents and queries are
  // stemmed exactly once by the same pipeline. Still, common query terms
  // should be stable under re-stemming.
  for (const char* w : {"relational", "indexing", "searching", "mining",
                        "retrieval", "graph", "network"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

// ---------------------------- Inverted index --------------------------------

KnowledgeGraph SmallNamedGraph() {
  GraphBuilder b;
  b.AddNode("XML database systems");
  b.AddNode("Relational database");
  b.AddNode("Graph searching");
  b.AddNode("The stopword node");
  LabelId l = b.AddLabel("rel");
  (void)b.AddEdge(0, 1, l);
  (void)b.AddEdge(1, 2, l);
  (void)b.AddEdge(2, 3, l);
  return std::move(b).Build();
}

TEST(InvertedIndexTest, LookupFindsNodesByStemmedTerm) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  auto post = index.Lookup("databases");  // stems to "databas"
  ASSERT_EQ(post.size(), 2u);
  EXPECT_EQ(post[0], 0u);
  EXPECT_EQ(post[1], 1u);
}

TEST(InvertedIndexTest, QueryAndDocumentAnalyzedIdentically) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  EXPECT_EQ(index.Lookup("searching").size(), 1u);
  EXPECT_EQ(index.Lookup("SEARCH").size(), 1u);  // same stem
}

TEST(InvertedIndexTest, UnknownTermEmpty) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  EXPECT_TRUE(index.Lookup("nonexistentterm").empty());
  EXPECT_EQ(index.KeywordFrequency("nonexistentterm"), 0u);
}

TEST(InvertedIndexTest, StopwordsNotIndexed) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  EXPECT_TRUE(index.Lookup("the").empty());
}

TEST(InvertedIndexTest, AnalyzeQueryDeduplicates) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  auto terms = index.AnalyzeQuery("database databases DATABASE graph");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "databas");
  EXPECT_EQ(terms[1], "graph");
}

TEST(InvertedIndexTest, PostingsSortedUnique) {
  GraphBuilder b;
  b.AddNode("zeta zeta zeta");  // repeated term in one name -> one posting
  b.AddNode("alpha zeta");
  LabelId l = b.AddLabel("rel");
  (void)b.AddEdge(0, 1, l);
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  auto post = index.Lookup("zeta");
  ASSERT_EQ(post.size(), 2u);
  EXPECT_LT(post[0], post[1]);
}

TEST(InvertedIndexTest, StatsPopulated) {
  KnowledgeGraph g = SmallNamedGraph();
  InvertedIndex index = InvertedIndex::Build(g);
  EXPECT_GT(index.num_terms(), 0u);
  EXPECT_GT(index.num_postings(), 0u);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace wikisearch
