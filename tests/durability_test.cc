// Crash-recovery suite (DESIGN.md §12). The contract under test: a durable
// SnapshotManager killed at ANY fault point recovers to a whole-batch
// boundary — at least every acknowledged batch, never a torn one — and the
// recovered KB answers queries byte-identically, across all four engine
// kinds, to a memory-only manager replaying the same prefix. Crashes are
// simulated by a fault hook that throws; the manager object is then
// abandoned exactly as a dead process would abandon it, and a second
// OpenDurable must put the directory back in service.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/fsio.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "live/manifest.h"
#include "live/persist.h"
#include "live/snapshot_manager.h"
#include "live/wal.h"
#include "server/search_service.h"
#include "test_util.h"
#include "text/inverted_index.h"

namespace wikisearch {
namespace {

using live::FsyncPolicy;
using live::SnapshotManager;
using live::UpdateBatch;
using testing::TempDir;

constexpr size_t kDistancePairs = 200;
constexpr uint64_t kDistanceSeed = 7;

SnapshotManager::Config ManagerConfig() {
  SnapshotManager::Config cfg;
  cfg.distance_pairs = kDistancePairs;
  cfg.distance_seed = kDistanceSeed;
  cfg.compact_threshold_batches = 0;  // tests compact explicitly
  return cfg;
}

struct SmallKb {
  KnowledgeGraph graph;
  InvertedIndex index;
};

SmallKb MakeKb() {
  SmallKb kb;
  kb.graph = testing::MakeGraph(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
           {8, 9}, {9, 10}, {10, 11}, {11, 0}, {0, 6}, {2, 9}, {4, 11}});
  AttachNodeWeights(&kb.graph);
  AttachAverageDistance(&kb.graph, kDistancePairs, kDistanceSeed);
  kb.index = InvertedIndex::Build(kb.graph);
  return kb;
}

/// Deterministic batch stream: every batch adds an overlay-born node wired
/// into the base ring (searchable by name), odd batches attach extra text,
/// every third batch removes the previous batch's hub edge.
UpdateBatch NthBatch(int i) {
  UpdateBatch b;
  live::TripleOp add;
  add.subject = "crash" + std::to_string(i);
  add.predicate = "rel";
  add.object = "n" + std::to_string(i % 12);
  b.add.push_back(add);
  live::TripleOp hub;
  hub.subject = "n" + std::to_string((i + 3) % 12);
  hub.predicate = "linksTo";
  hub.object = "crash" + std::to_string(i);
  b.add.push_back(hub);
  if (i % 2 == 1) {
    live::TextOp t;
    t.node = "crash" + std::to_string(i);
    t.text = "payload token" + std::to_string(i);
    b.text.push_back(t);
  }
  if (i % 3 == 0 && i > 1) {
    live::TripleOp rm;
    rm.subject = "n" + std::to_string(((i - 1) + 3) % 12);
    rm.predicate = "linksTo";
    rm.object = "crash" + std::to_string(i - 1);
    b.remove.push_back(rm);
  }
  return b;
}

std::vector<std::vector<std::string>> Queries() {
  return {{"n0", "n5"}, {"n2", "n9", "n11"}, {"crash1", "n0"}, {"crash2"}};
}

std::string Canonical(const Result<SearchResult>& r) {
  std::ostringstream out;
  if (!r.ok()) {
    out << "error:" << r.status().ToString();
    return out.str();
  }
  for (const std::string& kw : r->keywords) out << kw << ';';
  out << "|levels=" << r->stats.levels << '|';
  for (const AnswerGraph& a : r->answers) {
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(a.score));
    std::memcpy(&score_bits, &a.score, sizeof(score_bits));
    out << "a{" << a.central << ',' << a.depth << ',' << score_bits << ",n[";
    for (NodeId v : a.nodes) out << v << ',';
    out << "],e[";
    for (const AnswerEdge& e : a.edges) {
      out << e.src << '-' << e.label << '-' << e.dst << ',';
    }
    out << "]}";
  }
  return out.str();
}

/// Ground truth: a memory-only manager replaying batches 1..n from scratch.
std::unique_ptr<SnapshotManager> ReplayInMemory(int n) {
  SmallKb kb = MakeKb();
  auto mgr = std::make_unique<SnapshotManager>(
      std::move(kb.graph), std::move(kb.index), ManagerConfig());
  for (int i = 1; i <= n; ++i) {
    Status st = mgr->Apply(NthBatch(i));
    EXPECT_TRUE(st.ok()) << "replay batch " << i << ": " << st.ToString();
  }
  return mgr;
}

/// The recovered state must answer every query byte-identically to the
/// ground truth, on every engine kind — plus agree structurally.
void ExpectEquivalent(const SnapshotManager& got, const SnapshotManager& want) {
  auto gs = got.Pin();
  auto ws = want.Pin();
  GraphView gv = gs->graph_view();
  GraphView wv = ws->graph_view();
  ASSERT_EQ(gv.num_nodes(), wv.num_nodes());
  EXPECT_EQ(gv.num_triples(), wv.num_triples());
  for (NodeId v = 0; v < wv.num_nodes(); ++v) {
    ASSERT_EQ(gv.NodeName(v), wv.NodeName(v)) << "node " << v;
    EXPECT_EQ(gv.NodeWeight(v), wv.NodeWeight(v)) << "weight " << v;
  }
  IndexView gi = gs->index_view();
  IndexView wi = ws->index_view();
  EXPECT_EQ(gi.num_terms(), wi.num_terms());
  EXPECT_EQ(gi.num_postings(), wi.num_postings());

  SearchOptions defaults;
  defaults.threads = 2;
  SearchEngine got_engine(defaults);
  SearchEngine want_engine(defaults);
  for (EngineKind kind :
       {EngineKind::kSequential, EngineKind::kCpuParallel,
        EngineKind::kCpuDynamic, EngineKind::kGpuSim}) {
    SCOPED_TRACE(EngineKindName(kind));
    for (const auto& kws : Queries()) {
      SearchOptions opts;
      opts.threads = 2;
      opts.engine = kind;
      KbHandle gk = got.PinHandle();
      KbHandle wk = want.PinHandle();
      auto got_r = got_engine.SearchKeywords(gk, kws, opts);
      auto want_r = want_engine.SearchKeywords(wk, kws, opts);
      EXPECT_EQ(Canonical(got_r), Canonical(want_r))
          << "query: " << ::testing::PrintToString(kws);
    }
  }
}

/// Test crash: thrown by the fault hook, caught at the scenario level. The
/// manager that threw is then discarded un-shut-down, like a dead process.
struct CrashPoint {
  std::string point;
};

/// Arms a one-shot crash at `point` on `mgr`.
void ArmCrash(SnapshotManager* mgr, std::string point,
              std::shared_ptr<bool> armed) {
  mgr->SetFaultHook([point = std::move(point), armed](const char* p) {
    if (*armed && point == p) {
      *armed = false;
      throw CrashPoint{point};
    }
  });
}

Result<std::unique_ptr<SnapshotManager>> OpenDir(
    const std::string& dir, SnapshotManager::RecoveryInfo* info = nullptr,
    FsyncPolicy policy = FsyncPolicy::kAlways) {
  SmallKb kb = MakeKb();
  SnapshotManager::DurabilityOptions dopts;
  dopts.data_dir = dir;
  dopts.fsync_policy = policy;
  return SnapshotManager::OpenDurable(std::move(kb.graph),
                                      std::move(kb.index), ManagerConfig(),
                                      dopts, info);
}

// ------------------------------------------------------ lifecycle basics --

TEST(DurabilityTest, FreshBootThenCleanShutdownThenRecovery) {
  TempDir dir;
  {
    SnapshotManager::RecoveryInfo rec;
    auto mgr = OpenDir(dir.path(), &rec);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_FALSE(rec.recovered);
    EXPECT_TRUE(SnapshotManager::HasDurableState(dir.path()));
    for (int i = 1; i <= 4; ++i) {
      SnapshotManager::ApplyResult out;
      ASSERT_TRUE((*mgr)->Apply(NthBatch(i), &out).ok());
      EXPECT_EQ(out.seq, static_cast<uint64_t>(i));
      EXPECT_TRUE(out.durable);  // kAlways: fsynced before the ack
    }
    ASSERT_TRUE((*mgr)->ShutdownDurable().ok());
    EXPECT_TRUE(PathExists(dir.File(live::kCleanMarkerFile)));
  }
  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE(rec.recovered);
  EXPECT_TRUE(rec.clean_shutdown);
  EXPECT_FALSE(rec.wal_tail_torn);
  EXPECT_EQ(rec.replayed_batches, 4u);
  EXPECT_TRUE((*mgr)->clean_boot());
  // The marker is consumed: a crash after this boot is detectable.
  EXPECT_FALSE(PathExists(dir.File(live::kCleanMarkerFile)));
  auto want = ReplayInMemory(4);
  ExpectEquivalent(**mgr, *want);
  // The lineage continues: the next apply gets the next sequence number.
  SnapshotManager::ApplyResult out;
  ASSERT_TRUE((*mgr)->Apply(NthBatch(5), &out).ok());
  EXPECT_EQ(out.seq, 5u);
}

TEST(DurabilityTest, UncleanBootWithoutCrashStillRecovers) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*mgr)->Apply(NthBatch(i)).ok());
    }
    // No ShutdownDurable: simulates kill -9 between acks.
  }
  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE(rec.recovered);
  EXPECT_FALSE(rec.clean_shutdown);
  EXPECT_EQ(rec.replayed_batches, 3u);
  auto want = ReplayInMemory(3);
  ExpectEquivalent(**mgr, *want);
}

TEST(DurabilityTest, CompactionPersistsAndTruncatesWal) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*mgr)->Apply(NthBatch(i)).ok());
    }
    ASSERT_TRUE((*mgr)->CompactOnce().ok());
    EXPECT_EQ((*mgr)->wal_base_seq(), 5u);
    EXPECT_EQ((*mgr)->manifest_generation(), 2u);
    EXPECT_EQ((*mgr)->wal_segments_deleted(), 1u);
    // Post-compaction applies land in the rotated segment.
    ASSERT_TRUE((*mgr)->Apply(NthBatch(6)).ok());
  }
  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(rec.generation, 2u);
  EXPECT_EQ(rec.replayed_batches, 1u);  // only batch 6 is past the snapshot
  auto want = ReplayInMemory(6);
  ExpectEquivalent(**mgr, *want);
  // Superseded snapshot files are gone; the manifest's snapshot remains.
  EXPECT_FALSE(PathExists(dir.File(live::SnapshotFileName(1))));
  EXPECT_TRUE(PathExists(dir.File(live::SnapshotFileName(2))));
}

TEST(DurabilityTest, DoubleRecoveryIsIdempotent) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE((*mgr)->Apply(NthBatch(i)).ok());
    }
    ASSERT_TRUE((*mgr)->CompactOnce().ok());
    ASSERT_TRUE((*mgr)->Apply(NthBatch(5)).ok());
  }
  SnapshotManager::RecoveryInfo rec1;
  {
    auto mgr = OpenDir(dir.path(), &rec1);
    ASSERT_TRUE(mgr.ok());
    // Abandoned again without shutdown and without new writes.
  }
  SnapshotManager::RecoveryInfo rec2;
  auto mgr = OpenDir(dir.path(), &rec2);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(rec2.generation, rec1.generation);
  EXPECT_EQ(rec2.version, rec1.version);
  EXPECT_EQ(rec2.replayed_batches, rec1.replayed_batches);
  auto want = ReplayInMemory(5);
  ExpectEquivalent(**mgr, *want);
}

TEST(DurabilityTest, FsyncPoliciesAllRecoverAfterExplicitSync) {
  for (FsyncPolicy policy : {FsyncPolicy::kInterval, FsyncPolicy::kNever}) {
    SCOPED_TRACE(live::FsyncPolicyName(policy));
    TempDir dir;
    {
      auto mgr = OpenDir(dir.path(), nullptr, policy);
      ASSERT_TRUE(mgr.ok());
      for (int i = 1; i <= 3; ++i) {
        SnapshotManager::ApplyResult out;
        ASSERT_TRUE((*mgr)->Apply(NthBatch(i), &out).ok());
        EXPECT_EQ(out.seq, static_cast<uint64_t>(i));
      }
      ASSERT_TRUE((*mgr)->SyncWal().ok());  // honored under every policy
      EXPECT_EQ((*mgr)->wal_synced_seq(), 3u);
    }
    SnapshotManager::RecoveryInfo rec;
    auto mgr = OpenDir(dir.path(), &rec, policy);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    EXPECT_EQ(rec.replayed_batches, 3u);
    auto want = ReplayInMemory(3);
    ExpectEquivalent(**mgr, *want);
  }
}

// -------------------------------------------------- torn WAL tails ------

TEST(DurabilityTest, TornTailIsDiscardedAndRepaired) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*mgr)->Apply(NthBatch(i)).ok());
    }
  }
  // Tear the last record mid-payload, as a crash mid-append would.
  const std::string seg = dir.File(live::WalSegmentName(1));
  auto size = FileSizeOf(seg);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(seg, *size - 5).ok());

  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE(rec.wal_tail_torn);
  EXPECT_EQ(rec.replayed_batches, 2u);  // batch 3 was torn — whole-batch loss
  auto want = ReplayInMemory(2);
  ExpectEquivalent(**mgr, *want);
  // Recovery repaired the file: a second boot sees no tear and the lineage
  // reuses sequence 3.
  mgr->reset();
  SnapshotManager::RecoveryInfo rec2;
  auto again = OpenDir(dir.path(), &rec2);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(rec2.wal_tail_torn);
  EXPECT_EQ(rec2.replayed_batches, 2u);
  SnapshotManager::ApplyResult out;
  ASSERT_TRUE((*again)->Apply(NthBatch(3), &out).ok());
  EXPECT_EQ(out.seq, 3u);
}

TEST(DurabilityTest, GarbageTailIsDiscardedOnUncleanBoot) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Apply(NthBatch(1)).ok());
    ASSERT_TRUE((*mgr)->Apply(NthBatch(2)).ok());
  }
  const std::string seg = dir.File(live::WalSegmentName(1));
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(seg, &bytes).ok());
  bytes += std::string("\x13\x37garbage", 9);
  ASSERT_TRUE(WriteFileAtomic(seg, bytes).ok());

  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE(rec.wal_tail_torn);
  EXPECT_EQ(rec.replayed_batches, 2u);
  auto want = ReplayInMemory(2);
  ExpectEquivalent(**mgr, *want);
}

TEST(DurabilityTest, CleanBootTreatsTornTailAsHardCorruption) {
  TempDir dir;
  {
    auto mgr = OpenDir(dir.path());
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Apply(NthBatch(1)).ok());
    ASSERT_TRUE((*mgr)->Apply(NthBatch(2)).ok());
    ASSERT_TRUE((*mgr)->ShutdownDurable().ok());
  }
  // CLEAN promises the tail is complete; a tear contradicts it.
  const std::string seg = dir.File(live::WalSegmentName(1));
  auto size = FileSizeOf(seg);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(seg, *size - 3).ok());
  auto mgr = OpenDir(dir.path());
  ASSERT_FALSE(mgr.ok());
  EXPECT_EQ(mgr.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------- crash-point fault matrix ---

/// One kill-and-recover scenario: apply `pre` batches cleanly, arm a crash
/// at `point`, run the doomed operation (an Apply or a CompactOnce)
/// expecting the simulated crash, abandon the manager, recover, and check
/// the recovered KB equals a from-scratch replay of a whole-batch prefix:
/// at least every acknowledged batch, at most everything the WAL saw.
void RunCrashScenario(const std::string& point, int pre,
                      bool crash_in_compaction) {
  SCOPED_TRACE(point + (crash_in_compaction ? " (compaction)" : " (apply)"));
  TempDir dir;
  int acked = 0;
  {
    auto opened = OpenDir(dir.path());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<SnapshotManager> mgr = std::move(*opened);
    for (int i = 1; i <= pre; ++i) {
      ASSERT_TRUE(mgr->Apply(NthBatch(i)).ok());
    }
    acked = pre;
    auto armed = std::make_shared<bool>(true);
    ArmCrash(mgr.get(), point, armed);
    try {
      if (crash_in_compaction) {
        // Some fault points surface as a Status instead of unwinding (the
        // compaction aborts cleanly); either way the process "dies" here.
        (void)mgr->CompactOnce();
      } else {
        SnapshotManager::ApplyResult out;
        Status st = mgr->Apply(NthBatch(pre + 1), &out);
        if (st.ok()) acked = pre + 1;
      }
    } catch (const CrashPoint& cp) {
      EXPECT_EQ(cp.point, point);
    }
    EXPECT_FALSE(*armed) << "fault point never fired: " << point;
    // Abandon without shutdown — the crash.
  }

  SnapshotManager::RecoveryInfo rec;
  auto mgr = OpenDir(dir.path(), &rec);
  ASSERT_TRUE(mgr.ok()) << point << ": " << mgr.status().ToString();
  EXPECT_TRUE(rec.recovered);
  EXPECT_FALSE(rec.clean_shutdown);

  // The recovered WAL frontier is a whole-batch boundary between the acked
  // prefix and everything attempted.
  const uint64_t frontier = (*mgr)->wal_last_seq();
  EXPECT_GE(frontier, static_cast<uint64_t>(acked)) << point;
  EXPECT_LE(frontier, static_cast<uint64_t>(pre) + 1) << point;
  auto want = ReplayInMemory(static_cast<int>(frontier));
  ExpectEquivalent(**mgr, *want);

  // Second recovery of the same directory is idempotent.
  mgr->reset();
  SnapshotManager::RecoveryInfo rec2;
  auto again = OpenDir(dir.path(), &rec2);
  ASSERT_TRUE(again.ok()) << point << ": " << again.status().ToString();
  EXPECT_EQ((*again)->wal_last_seq(), frontier) << point;
  auto want2 = ReplayInMemory(static_cast<int>(frontier));
  ExpectEquivalent(**again, *want2);

  // And the directory still takes writes + a full durable compaction.
  SnapshotManager::ApplyResult out;
  ASSERT_TRUE(
      (*again)->Apply(NthBatch(static_cast<int>(frontier) + 1), &out).ok())
      << point;
  EXPECT_EQ(out.seq, frontier + 1) << point;
  ASSERT_TRUE((*again)->CompactOnce().ok()) << point;
}

TEST(DurabilityCrashTest, CrashDuringApply) {
  for (const char* point : {"live:apply", "wal:append", "wal:fsync"}) {
    RunCrashScenario(point, 3, /*crash_in_compaction=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DurabilityCrashTest, CrashDuringFold) {
  for (const char* point : {"live:fold", "snap:write", "snap:rename"}) {
    RunCrashScenario(point, 3, /*crash_in_compaction=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(DurabilityCrashTest, CrashDuringPublish) {
  RunCrashScenario("live:publish", 3, /*crash_in_compaction=*/true);
}

TEST(DurabilityCrashTest, CrashDuringManifestWriteAndGc) {
  for (const char* point : {"manifest:write", "wal:truncate"}) {
    RunCrashScenario(point, 3, /*crash_in_compaction=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --------------------------------------------------- HTTP /update shape --

TEST(DurabilityTest, UpdateResponseCarriesSeqAndDurable) {
  TempDir dir;
  auto opened = OpenDir(dir.path());
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<SnapshotManager> mgr = std::move(*opened);
  SearchOptions opts;
  opts.threads = 2;
  server::SearchService service(mgr.get(), opts);
  server::HttpRequest req;
  req.method = "POST";
  req.path = "/update";
  req.body = "{\"add\":[[\"durnode\",\"rel\",\"n0\"]]}";
  server::HttpResponse resp = service.HandleUpdate(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"seq\":1"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("\"durable\":true"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"version\":"), std::string::npos) << resp.body;
}

}  // namespace
}  // namespace wikisearch
