// Cross-engine equivalence: the lock-free CPU engine (sequential and
// parallel), the GPU-simulation engine and the locked dynamic-memory engine
// implement the same algorithm with different execution strategies
// (Thm. V.2), so they must return byte-identical answers on any input.
#include <gtest/gtest.h>

#include <optional>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

void ExpectSameAnswers(const SearchResult& a, const SearchResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    const AnswerGraph& x = a.answers[i];
    const AnswerGraph& y = b.answers[i];
    EXPECT_EQ(x.central, y.central) << label << " answer " << i;
    EXPECT_EQ(x.depth, y.depth) << label << " answer " << i;
    EXPECT_EQ(x.nodes, y.nodes) << label << " answer " << i;
    EXPECT_EQ(x.edges == y.edges, true) << label << " answer " << i;
    EXPECT_NEAR(x.score, y.score, 1e-9) << label << " answer " << i;
  }
  EXPECT_EQ(a.stats.num_centrals, b.stats.num_centrals) << label;
  EXPECT_EQ(a.stats.levels, b.stats.levels) << label;
}

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1500;
    cfg.num_summary_nodes = 6;
    cfg.num_topic_nodes = 16;
    cfg.num_communities = 8;
    cfg.vocab_size = 2000;
    cfg.seed = 99;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 2000, 7);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::vector<std::vector<std::string>> TestQueries(const Fixture& f,
                                                  size_t count) {
  // Seeded from the running test's name: every test draws its own query
  // stream instead of all sharing one literal constant.
  Rng rng(testing::TestSeed());
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(4);
    for (size_t i = 0; i < q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  return queries;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalenceTest, AllEnginesAgree) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 6);
  const auto& kws = queries[static_cast<size_t>(GetParam())];

  SearchOptions base;
  base.top_k = 10;
  base.alpha = 0.1;
  base.threads = 1;
  base.engine = EngineKind::kSequential;
  SearchEngine engine(&f.kb.graph, &f.index, base);

  Result<SearchResult> ref = engine.SearchKeywords(kws, base);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  struct Variant {
    EngineKind kind;
    int threads;
    const char* label;
    bool frontier_buffers = true;
  };
  const Variant variants[] = {
      {EngineKind::kCpuParallel, 1, "cpu-par-1"},
      {EngineKind::kCpuParallel, 2, "cpu-par-2"},
      {EngineKind::kCpuParallel, 4, "cpu-par-4"},
      {EngineKind::kCpuParallel, 8, "cpu-par-8"},
      // Legacy O(n) flag-scan enqueue must agree with the buffered enqueue.
      {EngineKind::kCpuParallel, 4, "cpu-par-4-scan", false},
      {EngineKind::kGpuSim, 4, "gpu-sim"},
      {EngineKind::kCpuDynamic, 1, "dynamic-1"},
      {EngineKind::kCpuDynamic, 4, "dynamic-4"},
  };
  for (const Variant& v : variants) {
    SearchOptions opts = base;
    opts.engine = v.kind;
    opts.threads = v.threads;
    opts.use_frontier_buffers = v.frontier_buffers;
    Result<SearchResult> got = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameAnswers(*ref, *got, v.label);
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, EngineEquivalenceTest,
                         ::testing::Range(0, 6));

TEST(EngineEquivalenceTest, RepeatedParallelRunsAreDeterministic) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 1);
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 4;
  opts.engine = EngineKind::kCpuParallel;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  Result<SearchResult> first = engine.SearchKeywords(queries[0], opts);
  ASSERT_TRUE(first.ok());
  for (int round = 0; round < 5; ++round) {
    Result<SearchResult> again = engine.SearchKeywords(queries[0], opts);
    ASSERT_TRUE(again.ok());
    ExpectSameAnswers(*first, *again, "round " + std::to_string(round));
  }
}

// Cancelling every engine kind at the same level must leave each with the
// same identified centrals (levels <= L are complete in all of them), so the
// partial answers have to agree answer-for-answer, dynamic engine included.
TEST(EngineEquivalenceTest, CancellationIsEquivalentAcrossEngines) {
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 3);
  const int cancel_after_level = 2;
  const EngineKind kinds[] = {EngineKind::kSequential, EngineKind::kCpuParallel,
                              EngineKind::kCpuDynamic, EngineKind::kGpuSim};
  for (const auto& kws : queries) {
    SearchOptions base;
    base.top_k = 10;
    base.threads = 4;
    SearchEngine engine(&f.kb.graph, &f.index, base);
    std::optional<SearchResult> ref;
    for (EngineKind kind : kinds) {
      SearchOptions opts = base;
      opts.engine = kind;
      auto res = engine.SearchKeywordsProgressive(
          kws, opts, [&](const LevelProgress& p) {
            return p.level < cancel_after_level;
          });
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_TRUE(res->stats.cancelled) << EngineKindName(kind);
      for (const AnswerGraph& a : res->answers) {
        testing::CheckAnswerInvariants(f.kb.graph, a, res->keywords.size());
      }
      if (!ref.has_value()) {
        ref = std::move(*res);
      } else {
        ExpectSameAnswers(*ref, *res, EngineKindName(kind));
      }
    }
  }
}

TEST(EngineEquivalenceTest, AnswerInvariantsHoldOnGeneratedKb) {
  Fixture& f = SharedFixture();
  SearchOptions opts;
  opts.top_k = 15;
  opts.threads = 2;
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  for (const auto& kws : TestQueries(f, 5)) {
    Result<SearchResult> res = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(res.ok());
    for (const AnswerGraph& a : res->answers) {
      testing::CheckAnswerInvariants(f.kb.graph, a,
                                     res->keywords.size());
    }
  }
}

}  // namespace
}  // namespace wikisearch
