// Tests of the HTTP substrate (parsing, routing, concurrency), the LRU
// query cache, and the full search service over real sockets.
#include <gtest/gtest.h>

#include <thread>

#include "common/json.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/query_cache.h"
#include "server/search_service.h"

namespace wikisearch::server {
namespace {

// ------------------------------ URL / parsing --------------------------------

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("x%2Fy"), "x/y");
  EXPECT_EQ(UrlDecode("plain"), "plain");
}

TEST(UrlDecodeTest, MalformedPercentLeftAlone) {
  EXPECT_EQ(UrlDecode("100%"), "100%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
}

TEST(ParseQueryStringTest, SplitsPairs) {
  auto params = ParseQueryString("q=xml+rdf&k=5&flag");
  EXPECT_EQ(params["q"], "xml rdf");
  EXPECT_EQ(params["k"], "5");
  EXPECT_TRUE(params.count("flag"));
  EXPECT_EQ(params["flag"], "");
}

TEST(ParseHttpRequestTest, FullRequest) {
  std::string raw =
      "GET /search?q=a%20b HTTP/1.1\r\nHost: x\r\nX-Test: Val\r\n\r\n";
  auto req = ParseHttpRequest(raw);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/search");
  EXPECT_EQ(req->Param("q"), "a b");
  EXPECT_EQ(req->headers.at("x-test"), "Val");  // lower-cased key
}

TEST(ParseHttpRequestTest, PostWithBody) {
  std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  auto req = ParseHttpRequest(raw);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->body, "hello");
}

TEST(ParseHttpRequestTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n").ok());
}

// ------------------------------ Query cache ----------------------------------

TEST(QueryCacheTest, HitAfterPut) {
  QueryCache cache(4);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", "1");
  auto got = cache.Get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(2);
  cache.Put("a", "1");
  cache.Put("b", "2");
  EXPECT_TRUE(cache.Get("a").has_value());  // refresh a
  cache.Put("c", "3");                      // evicts b
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheTest, OverwriteRefreshes) {
  QueryCache cache(2);
  cache.Put("a", "1");
  cache.Put("b", "2");
  cache.Put("a", "updated");
  cache.Put("c", "3");  // evicts b (a was refreshed by overwrite)
  EXPECT_EQ(*cache.Get("a"), "updated");
  EXPECT_FALSE(cache.Get("b").has_value());
}

TEST(QueryCacheTest, ZeroCapacityDisables) {
  QueryCache cache(0);
  cache.Put("a", "1");
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryCacheTest, ConcurrentAccessSafe) {
  QueryCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string((t * 31 + i) % 100);
        cache.Put(key, "v");
        cache.Get(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 64u);
}

// ------------------------------ HTTP server ----------------------------------

TEST(HttpServerTest, RoutesAndNotFound) {
  HttpServer server;
  server.Route("/hello", [](const HttpRequest&) {
    return HttpResponse::Text(200, "hi");
  });
  ASSERT_TRUE(server.Start(0).ok());
  auto ok = HttpGet(server.port(), "/hello");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "hi");
  auto missing = HttpGet(server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  server.Stop();
}

TEST(HttpServerTest, ParamsReachHandler) {
  HttpServer server;
  server.Route("/echo", [](const HttpRequest& req) {
    return HttpResponse::Text(200, req.Param("msg", "none"));
  });
  ASSERT_TRUE(server.Start(0).ok());
  auto resp = HttpGet(server.port(), "/echo?msg=hello%20there");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "hello there");
  server.Stop();
}

TEST(HttpServerTest, ConcurrentRequests) {
  HttpServer server;
  server.Route("/n", [](const HttpRequest& req) {
    return HttpResponse::Text(200, req.Param("i"));
  });
  ASSERT_TRUE(server.Start(0).ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      auto resp = HttpGet(server.port(), "/n?i=" + std::to_string(t));
      if (!resp.ok() || resp->body != std::to_string(t)) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(), 8u);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
}

// ----------------------------- Search service --------------------------------

struct ServiceFixture {
  ServiceFixture() {
    GraphBuilder b;
    b.AddTriple("xml toolkit", "part of", "data tools");
    b.AddTriple("rdf engine", "part of", "data tools");
    b.AddTriple("sql planner", "part of", "data tools");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 100, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(SearchServiceTest, SearchReturnsJsonAnswers) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  req.path = "/search";
  req.params["q"] = "xml rdf";
  HttpResponse resp = service.HandleSearch(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"answers\":["), std::string::npos);
  EXPECT_NE(resp.body.find("data tools"), std::string::npos);
  EXPECT_NE(resp.body.find("\"keywords\":[\"xml\",\"rdf\"]"),
            std::string::npos);
}

TEST(SearchServiceTest, MissingQueryIs400) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  EXPECT_EQ(service.HandleSearch(req).status, 400);
}

TEST(SearchServiceTest, UnknownKeywordsAre404) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  req.params["q"] = "zzzmissing";
  HttpResponse resp = service.HandleSearch(req);
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("error"), std::string::npos);
}

TEST(SearchServiceTest, RepeatedQueryHitsCache) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  req.params["q"] = "xml rdf";
  HttpResponse first = service.HandleSearch(req);
  HttpResponse second = service.HandleSearch(req);
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(service.cache().hits(), 1u);
}

TEST(SearchServiceTest, ParametersChangeCacheKey) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest a, b;
  a.params["q"] = b.params["q"] = "xml rdf";
  a.params["k"] = "5";
  b.params["k"] = "10";
  service.HandleSearch(a);
  service.HandleSearch(b);
  EXPECT_EQ(service.cache().hits(), 0u);
  EXPECT_EQ(service.cache().size(), 2u);
}

TEST(SearchServiceTest, StatsAndHealthEndpoints) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  HttpResponse stats = service.HandleStats(req);
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"graph\""), std::string::npos);
  EXPECT_EQ(service.HandleHealth(req).status, 200);
}

TEST(SearchServiceTest, EndToEndOverSockets) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());
  auto resp = HttpGet(server.port(), "/search?q=xml+sql&k=3&engine=gpu");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"answers\""), std::string::npos);
  auto health = HttpGet(server.port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->body, "ok\n");
  server.Stop();
}

// --------------------------- /metrics & tracing ------------------------------

TEST(SearchServiceTest, MetricsScrapeAgreesWithCacheAndQueryCounters) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  req.params["q"] = "xml rdf";
  req.params["engine"] = "seq";
  service.HandleSearch(req);  // miss: the engine runs
  service.HandleSearch(req);  // hit
  service.HandleSearch(req);  // hit

  HttpResponse resp = service.HandleMetrics(HttpRequest{});
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "text/plain; version=0.0.4");
  const std::string& out = resp.body;

  // Scraped counters agree exactly with the client-observed behavior and
  // with the cache's own counts — one source per number.
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_cache_hits_total"), 2.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_cache_misses_total"), 1.0);
  EXPECT_EQ(service.cache().hits(), 2u);
  EXPECT_EQ(service.cache().misses(), 1u);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_queries_total"), 3.0);
  // The engine ran exactly once (the miss): its latency histogram proves it.
  EXPECT_EQ(obs::FindMetricValue(
                out, "ws_search_latency_ms_count{engine=\"Sequential\"}"),
            1.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_search_total{engine=\"Sequential\"}"),
            1.0);
  // Gauges mirror the cache and admission state at scrape time.
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_cache_entries"), 1.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_in_flight"), 0.0);
}

TEST(SearchServiceTest, ServicesOwnIndependentRegistriesByDefault) {
  ServiceFixture f;
  SearchService a(&f.graph, &f.index);
  SearchService b(&f.graph, &f.index);
  HttpRequest req;
  req.params["q"] = "xml rdf";
  a.HandleSearch(req);
  EXPECT_EQ(obs::FindMetricValue(a.HandleMetrics(req).body,
                                 "ws_server_queries_total"),
            1.0);
  // The sibling service's registry never saw the query.
  EXPECT_EQ(obs::FindMetricValue(b.HandleMetrics(req).body,
                                 "ws_server_queries_total"),
            0.0);
}

TEST(SearchServiceTest, TraceParamAttachesParseableSpansAndBypassesCache) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpRequest req;
  req.params["q"] = "xml rdf";
  req.params["trace"] = "1";
  HttpResponse resp = service.HandleSearch(req);
  EXPECT_EQ(resp.status, 200);

  Result<JsonValue> doc = JsonParse(resp.body);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());
  EXPECT_EQ(events->array[0].Find("name")->str, "search");

  // Exactly one "bottomup/level" event per completed level, straight from
  // the same response's stats block.
  const JsonValue* stats = doc->Find("stats");
  ASSERT_NE(stats, nullptr);
  size_t level_events = 0;
  for (const JsonValue& ev : events->array) {
    if (ev.Find("name")->str == "bottomup/level") ++level_events;
  }
  EXPECT_EQ(static_cast<double>(level_events),
            stats->Find("levels_completed")->number);

  // Traced responses bypass the cache in both directions.
  EXPECT_EQ(service.cache().size(), 0u);
  HttpRequest plain = req;
  plain.params.erase("trace");
  service.HandleSearch(plain);  // miss: fills the cache
  service.HandleSearch(req);    // traced: must not read the cached body
  EXPECT_EQ(service.cache().hits(), 0u);
  HttpResponse again = service.HandleSearch(plain);  // untraced: cache hit
  EXPECT_EQ(service.cache().hits(), 1u);
  EXPECT_EQ(again.body.find("\"trace\""), std::string::npos);
}

TEST(SearchServiceTest, MetricsEndpointOverSockets) {
  ServiceFixture f;
  SearchService service(&f.graph, &f.index);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(HttpGet(server.port(), "/search?q=xml+rdf").ok());
  ASSERT_TRUE(HttpGet(server.port(), "/search?q=xml+rdf").ok());
  auto resp = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  const std::string& out = resp->body;
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_queries_total"), 2.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_cache_hits_total"), 1.0);
  // The HttpServer's own counters are bridged in at scrape time.
  auto served = obs::FindMetricValue(out, "ws_server_http_requests_total");
  ASSERT_TRUE(served.has_value());
  EXPECT_GE(*served, 2.0);
  EXPECT_TRUE(
      obs::FindMetricValue(out, "ws_server_live_worker_threads").has_value());
  server.Stop();
}

}  // namespace
}  // namespace wikisearch::server
