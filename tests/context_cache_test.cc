// The shared query-context cache, from the unit level (keying, exact LRU
// capacity, the stale-after-reindex Put contract) up through the serving
// layer (hit/miss/eviction counters must reconcile exactly with /metrics
// and /stats, and invalidation must force a rebuild).
#include "core/context_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/metrics.h"
#include "server/search_service.h"
#include "test_util.h"

namespace wikisearch {
namespace {

KnowledgeGraph MakeWeightedGraph() {
  GraphBuilder b;
  b.AddTriple("xml toolkit", "part of", "data tools");
  b.AddTriple("rdf engine", "part of", "data tools");
  b.AddTriple("sql planner", "part of", "data tools");
  b.AddTriple("graph store", "part of", "data tools");
  b.AddTriple("xml parser", "part of", "xml toolkit");
  b.AddTriple("query optimizer", "part of", "sql planner");
  KnowledgeGraph g = std::move(b).Build();
  AttachNodeWeights(&g);
  AttachAverageDistance(&g, 100, 3);
  return g;
}

std::shared_ptr<const CachedQueryContext> MakeContext(
    const KnowledgeGraph* g, std::vector<std::string> keywords) {
  std::vector<std::vector<NodeId>> t_i(keywords.size(),
                                       std::vector<NodeId>{0});
  ActivationMap act(g->average_distance(), 0.5, true);
  return std::make_shared<CachedQueryContext>(
      QueryContext(*g, std::move(keywords), std::move(t_i), act, 4),
      std::vector<std::string>{});
}

TEST(QueryContextCacheTest, MakeKeyDistinguishesEveryParameter) {
  KnowledgeGraph g = MakeWeightedGraph();
  const void* gp = &g;
  const void* ip = reinterpret_cast<const void*>(0x1);
  std::set<std::string> keys;
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"a", "b"}, 0.5, true, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"b", "a"}, 0.5, true, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"a"}, 0.5, true, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"a", "b"}, 0.25, true, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"a", "b"}, 0.5, false, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 0, {"a", "b"}, 0.5, true, 3));
  keys.insert(
      QueryContextCache::MakeKey(ip, ip, 0, {"a", "b"}, 0.5, true, 0));
  keys.insert(QueryContextCache::MakeKey(gp, ip, 7, {"a", "b"}, 0.5, true, 0));
  EXPECT_EQ(keys.size(), 8u);
  // Keyword concatenation cannot collide across the separator: {"ab"} and
  // {"a","b"} differ.
  EXPECT_NE(QueryContextCache::MakeKey(gp, ip, 0, {"ab"}, 0.5, true, 0),
            QueryContextCache::MakeKey(gp, ip, 0, {"a", "b"}, 0.5, true, 0));
}

TEST(QueryContextCacheTest, HitRefreshesRecencyAndSharesOneSnapshot) {
  KnowledgeGraph g = MakeWeightedGraph();
  QueryContextCache cache(8);
  auto ctx = MakeContext(&g, {"xml"});
  const std::string key =
      QueryContextCache::MakeKey(&g, nullptr, 0, {"xml"}, 0.5, true, 0);
  EXPECT_EQ(cache.Get(key), nullptr);
  cache.Put(key, ctx, cache.generation());
  auto first = cache.Get(key);
  auto second = cache.Get(key);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), ctx.get());   // the same immutable snapshot
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryContextCacheTest, TinyCapacityEvictsExactly) {
  KnowledgeGraph g = MakeWeightedGraph();
  QueryContextCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  constexpr int kKeys = 6;
  for (int i = 0; i < kKeys; ++i) {
    std::string kw = "kw" + std::to_string(i);
    std::string key =
        QueryContextCache::MakeKey(&g, nullptr, 0, {kw}, 0.5, true, 0);
    EXPECT_EQ(cache.Get(key), nullptr);  // every probe misses: capacity 2
    cache.Put(key, MakeContext(&g, {kw}), cache.generation());
  }
  // Exact accounting: every miss inserted one entry, everything beyond the
  // capacity was evicted, and the books balance to the entry.
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), static_cast<uint64_t>(kKeys));
  EXPECT_EQ(cache.size(), cache.misses() - cache.evictions());
  // An entry kept by a live shared_ptr survives its eviction.
  auto held = MakeContext(&g, {"held"});
  std::string held_key =
      QueryContextCache::MakeKey(&g, nullptr, 0, {"held"}, 0.5, true, 0);
  cache.Put(held_key, held, cache.generation());
  auto leased = cache.Get(held_key);
  for (int i = 0; i < 2 * kKeys; ++i) {
    std::string kw = "spill" + std::to_string(i);
    cache.Put(QueryContextCache::MakeKey(&g, nullptr, 0, {kw}, 0.5, true, 0),
              MakeContext(&g, {kw}), cache.generation());
  }
  if (leased != nullptr) {
    EXPECT_EQ(leased->ctx.keywords.front(), "held");
  }
}

TEST(QueryContextCacheTest, StalePutAfterInvalidateIsRejected) {
  KnowledgeGraph g = MakeWeightedGraph();
  QueryContextCache cache(4);
  const std::string key =
      QueryContextCache::MakeKey(&g, nullptr, 0, {"xml"}, 0.5, true, 0);
  // A query captures the generation, starts building... and the index is
  // rebuilt before it finishes. Its Put must be dropped on the floor.
  uint64_t stale_generation = cache.generation();
  cache.Invalidate();
  cache.Put(key, MakeContext(&g, {"xml"}), stale_generation);
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 1u);
  // A Put carrying the post-invalidation generation is accepted.
  cache.Put(key, MakeContext(&g, {"xml"}), cache.generation());
  EXPECT_NE(cache.Get(key), nullptr);
}

TEST(QueryContextCacheTest, InvalidateDropsEverything) {
  KnowledgeGraph g = MakeWeightedGraph();
  // Capacity 64 = 8 slots per shard: five keys can never evict each other
  // regardless of how they land across shards (key strings embed heap
  // addresses, so shard assignment varies run to run).
  QueryContextCache cache(64);
  for (int i = 0; i < 5; ++i) {
    std::string kw = "kw" + std::to_string(i);
    cache.Put(QueryContextCache::MakeKey(&g, nullptr, 0, {kw}, 0.5, true, 0),
              MakeContext(&g, {kw}), cache.generation());
  }
  EXPECT_EQ(cache.size(), 5u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  for (int i = 0; i < 5; ++i) {
    std::string kw = "kw" + std::to_string(i);
    EXPECT_EQ(
        cache.Get(QueryContextCache::MakeKey(&g, nullptr, 0, {kw}, 0.5, true,
                                             0)),
        nullptr);
  }
}

TEST(QueryContextCacheTest, CapacityZeroDisablesCaching) {
  KnowledgeGraph g = MakeWeightedGraph();
  QueryContextCache cache(0);
  const std::string key =
      QueryContextCache::MakeKey(&g, nullptr, 0, {"xml"}, 0.5, true, 0);
  cache.Put(key, MakeContext(&g, {"xml"}), cache.generation());
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

// ---- Serving-layer reconciliation ----------------------------------------

using server::HttpRequest;

struct ServiceFixture {
  ServiceFixture() : graph(MakeWeightedGraph()) {
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

HttpRequest SearchRequest(const std::string& q) {
  HttpRequest req;
  req.method = "GET";
  req.path = "/search";
  req.params["q"] = q;
  return req;
}

TEST(ContextCacheServiceTest, HitsAndMissesReconcileWithMetrics) {
  ServiceFixture f;
  // Response cache disabled (capacity 0): every request reaches the engine,
  // so context probes equal requests and the books must balance exactly.
  server::SearchService service(&f.graph, &f.index, SearchOptions{},
                                /*cache_capacity=*/0);
  const std::vector<std::string> hot = {"xml tools", "rdf engine",
                                        "sql planner"};
  int requests = 0;
  for (int round = 0; round < 3; ++round) {
    for (const std::string& q : hot) {
      auto resp = service.HandleSearch(SearchRequest(q));
      ASSERT_EQ(resp.status, 200) << q;
      ++requests;
    }
  }
  const QueryContextCache& cc = service.context_cache();
  EXPECT_EQ(cc.hits() + cc.misses(), static_cast<uint64_t>(requests));
  EXPECT_EQ(cc.misses(), hot.size());  // one build per distinct keyword set
  EXPECT_EQ(cc.hits(), static_cast<uint64_t>(requests) - hot.size());
  EXPECT_EQ(cc.size(), hot.size());
  EXPECT_EQ(cc.evictions(), 0u);

  // /metrics must expose the same numbers through the registry bridge.
  auto metrics = service.HandleMetrics(HttpRequest{});
  ASSERT_EQ(metrics.status, 200);
  EXPECT_EQ(obs::FindMetricValue(metrics.body, "ws_context_cache_hits_total"),
            static_cast<double>(cc.hits()));
  EXPECT_EQ(
      obs::FindMetricValue(metrics.body, "ws_context_cache_misses_total"),
      static_cast<double>(cc.misses()));
  EXPECT_EQ(
      obs::FindMetricValue(metrics.body, "ws_context_cache_evictions_total"),
      0.0);
  EXPECT_EQ(obs::FindMetricValue(metrics.body, "ws_context_cache_entries"),
            static_cast<double>(cc.size()));

  // /stats carries the same counters under "context_cache".
  auto stats = service.HandleStats(HttpRequest{});
  EXPECT_NE(stats.body.find("\"context_cache\""), std::string::npos);
  EXPECT_NE(stats.body.find("\"evictions\""), std::string::npos);
}

TEST(ContextCacheServiceTest, InvalidationForcesRebuild) {
  ServiceFixture f;
  server::SearchService service(&f.graph, &f.index, SearchOptions{},
                                /*cache_capacity=*/0);
  ASSERT_EQ(service.HandleSearch(SearchRequest("xml tools")).status, 200);
  ASSERT_EQ(service.HandleSearch(SearchRequest("xml tools")).status, 200);
  const QueryContextCache& cc = service.context_cache();
  EXPECT_EQ(cc.hits(), 1u);
  EXPECT_EQ(cc.misses(), 1u);

  service.InvalidateContextCache();
  EXPECT_EQ(cc.size(), 0u);
  ASSERT_EQ(service.HandleSearch(SearchRequest("xml tools")).status, 200);
  // The post-invalidation query rebuilt rather than hitting stale state.
  EXPECT_EQ(cc.hits(), 1u);
  EXPECT_EQ(cc.misses(), 2u);
  EXPECT_EQ(cc.invalidations(), 1u);
  EXPECT_EQ(cc.size(), 1u);
}

TEST(ContextCacheServiceTest, TinyCapacityPropertyReconciliation) {
  ServiceFixture f;
  // Context capacity 2 with 5 distinct keyword sets: a seeded random request
  // stream must keep every invariant — size within capacity, hits + misses
  // equal to requests, and entries = misses - evictions (every miss inserts
  // exactly one entry; every overflow evicts exactly one).
  server::SearchService service(&f.graph, &f.index, SearchOptions{},
                                /*cache_capacity=*/0, /*metrics=*/nullptr,
                                /*context_cache_capacity=*/2);
  const std::vector<std::string> pool = {"xml tools", "rdf engine",
                                         "sql planner", "graph store",
                                         "query optimizer"};
  Rng rng(testing::TestSeed());
  constexpr int kRequests = 60;
  for (int i = 0; i < kRequests; ++i) {
    const std::string& q = pool[rng.Uniform(pool.size())];
    auto resp = service.HandleSearch(SearchRequest(q));
    ASSERT_EQ(resp.status, 200) << q;
    EXPECT_LE(service.context_cache().size(), 2u);
  }
  const QueryContextCache& cc = service.context_cache();
  EXPECT_EQ(cc.hits() + cc.misses(), static_cast<uint64_t>(kRequests));
  EXPECT_EQ(cc.size(), cc.misses() - cc.evictions());
  EXPECT_GT(cc.misses(), 0u);

  auto metrics = service.HandleMetrics(HttpRequest{});
  EXPECT_EQ(obs::FindMetricValue(metrics.body, "ws_context_cache_hits_total"),
            static_cast<double>(cc.hits()));
  EXPECT_EQ(
      obs::FindMetricValue(metrics.body, "ws_context_cache_misses_total"),
      static_cast<double>(cc.misses()));
  EXPECT_EQ(
      obs::FindMetricValue(metrics.body, "ws_context_cache_evictions_total"),
      static_cast<double>(cc.evictions()));
}

TEST(ContextCacheServiceTest, CapacityZeroServiceSkipsTheCache) {
  ServiceFixture f;
  server::SearchService service(&f.graph, &f.index, SearchOptions{},
                                /*cache_capacity=*/0, /*metrics=*/nullptr,
                                /*context_cache_capacity=*/0);
  ASSERT_EQ(service.HandleSearch(SearchRequest("xml tools")).status, 200);
  ASSERT_EQ(service.HandleSearch(SearchRequest("xml tools")).status, 200);
  // The engine was never given the cache: no probes are recorded at all.
  EXPECT_EQ(service.context_cache().hits(), 0u);
  EXPECT_EQ(service.context_cache().misses(), 0u);
}

}  // namespace
}  // namespace wikisearch
