#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "eval/harness.h"
#include "eval/relevance.h"

namespace wikisearch::eval {
namespace {

gen::WikiGenConfig TinyConfig() {
  gen::WikiGenConfig cfg;
  cfg.num_entities = 800;
  cfg.num_summary_nodes = 4;
  cfg.num_topic_nodes = 8;
  cfg.num_communities = 8;
  cfg.vocab_size = 1200;
  cfg.seed = 7;
  return cfg;
}

struct Fixture {
  Fixture() : kb(gen::Generate(TinyConfig())), judge(&kb) {}
  gen::GeneratedKb kb;
  RelevanceJudge judge;
};

AnswerGraph MakeAnswer(std::vector<std::vector<NodeId>> keyword_nodes) {
  AnswerGraph a;
  a.keyword_nodes = std::move(keyword_nodes);
  for (const auto& kn : a.keyword_nodes) {
    for (NodeId v : kn) a.nodes.push_back(v);
  }
  std::sort(a.nodes.begin(), a.nodes.end());
  a.nodes.erase(std::unique(a.nodes.begin(), a.nodes.end()), a.nodes.end());
  if (!a.nodes.empty()) a.central = a.nodes[0];
  return a;
}

NodeId CommunityMember(const gen::GeneratedKb& kb, int32_t c, size_t skip = 0) {
  for (NodeId v = 0; v < kb.graph.num_nodes(); ++v) {
    if (kb.meta.community_of_node[v] == c) {
      if (skip == 0) return v;
      --skip;
    }
  }
  return kInvalidNode;
}

TEST(RelevanceTest, KeywordHomeFindsCommunity) {
  Fixture f;
  const std::string& term = f.kb.meta.community_terms[3][0];
  EXPECT_EQ(f.judge.KeywordHome(term), 3);
  EXPECT_EQ(f.judge.KeywordHome("not a community term"), -1);
}

TEST(RelevanceTest, UncoveredKeywordIsIrrelevant) {
  Fixture f;
  gen::Query q;
  q.keywords = {f.kb.meta.community_terms[0][0],
                f.kb.meta.community_terms[0][1]};
  q.target_community = 0;
  AnswerGraph a = MakeAnswer({{CommunityMember(f.kb, 0)}, {}});
  EXPECT_FALSE(f.judge.IsRelevant(q, a));
}

TEST(RelevanceTest, CoherentCooccurringAnswerIsRelevant) {
  Fixture f;
  gen::Query q;
  q.keywords = {f.kb.meta.community_terms[0][0],
                f.kb.meta.community_terms[0][1]};
  q.target_community = 0;
  NodeId member = CommunityMember(f.kb, 0);
  // One community node covering both keywords: coherent and co-occurring.
  AnswerGraph a = MakeAnswer({{member}, {member}});
  EXPECT_TRUE(f.judge.IsRelevant(q, a));
}

TEST(RelevanceTest, OffCommunityCoverageIsIrrelevant) {
  Fixture f;
  gen::Query q;
  q.keywords = {f.kb.meta.community_terms[0][0],
                f.kb.meta.community_terms[0][1]};
  q.target_community = 0;
  NodeId wrong = CommunityMember(f.kb, 5);
  AnswerGraph a = MakeAnswer({{wrong}, {wrong}});
  EXPECT_FALSE(f.judge.IsRelevant(q, a));
}

TEST(RelevanceTest, ScatteredSingleKeywordNodesFailPhraseTest) {
  Fixture f;
  gen::Query q;
  q.keywords = {f.kb.meta.community_terms[0][0],
                f.kb.meta.community_terms[0][1]};
  q.target_community = 0;
  NodeId m0 = CommunityMember(f.kb, 0, 0);
  NodeId m1 = CommunityMember(f.kb, 0, 1);
  ASSERT_NE(m0, m1);
  // Each keyword covered by a different node: coherent but no co-occurrence.
  AnswerGraph a = MakeAnswer({{m0}, {m1}});
  EXPECT_FALSE(f.judge.IsRelevant(q, a));
}

TEST(RelevanceTest, OpenQueriesAcceptAnyCoveringAnswer) {
  Fixture f;
  gen::Query q;
  q.keywords = {"anything", "else"};
  q.target_community = -1;
  NodeId m0 = CommunityMember(f.kb, 2, 0);
  NodeId m1 = CommunityMember(f.kb, 5, 0);
  AnswerGraph a = MakeAnswer({{m0}, {m1}});
  EXPECT_TRUE(f.judge.IsRelevant(q, a));
}

TEST(RelevanceTest, TopKPrecisionCountsPrefix) {
  Fixture f;
  gen::Query q;
  q.keywords = {"x"};
  q.target_community = -1;
  AnswerGraph good = MakeAnswer({{CommunityMember(f.kb, 0)}});
  AnswerGraph bad = MakeAnswer({{}});
  std::vector<AnswerGraph> answers = {good, bad, good, bad};
  EXPECT_DOUBLE_EQ(f.judge.TopKPrecision(q, answers, 2), 0.5);
  EXPECT_DOUBLE_EQ(f.judge.TopKPrecision(q, answers, 4), 0.5);
  EXPECT_DOUBLE_EQ(f.judge.TopKPrecision(q, {good}, 5), 1.0);
  EXPECT_DOUBLE_EQ(f.judge.TopKPrecision(q, {}, 5), 0.0);
}

// ------------------------------- Harness -------------------------------------

TEST(HarnessTest, ScaledConfigHonorsEnv) {
  setenv("WS_SCALE", "0.5", 1);
  gen::WikiGenConfig cfg;
  cfg.num_entities = 1000;
  gen::WikiGenConfig scaled = ScaledConfig(cfg);
  EXPECT_EQ(scaled.num_entities, 500u);
  unsetenv("WS_SCALE");
  EXPECT_EQ(ScaledConfig(cfg).num_entities, 1000u);
}

TEST(HarnessTest, EnvKnobsDefaults) {
  unsetenv("WS_BENCH_TIME_LIMIT_MS");
  unsetenv("WS_BENCH_QUERIES");
  EXPECT_DOUBLE_EQ(BanksTimeLimitMs(), 2000.0);
  EXPECT_EQ(BenchQueryCount(), 8u);
  setenv("WS_BENCH_QUERIES", "3", 1);
  EXPECT_EQ(BenchQueryCount(), 3u);
  unsetenv("WS_BENCH_QUERIES");
}

TEST(HarnessTest, CsvSlugNormalizesTitles) {
  EXPECT_EQ(CsvSlug("Fig. 8 (top): vary Topk on wikisynth-S"),
            "fig_8_top_vary_topk_on_wikisynth_s");
  EXPECT_EQ(CsvSlug("plain"), "plain");
  EXPECT_EQ(CsvSlug("--weird--"), "weird");
}

TEST(HarnessTest, CsvSinkWritesTables) {
  std::string dir = ::testing::TempDir();
  setenv("WS_CSV_DIR", dir.c_str(), 1);
  PrintHeader("Test Table One", {"a", "b"});
  PrintRow({"1", "with,comma"});
  PrintRow({"2", "plain"});
  PrintHeader("Test Table Two", {"x"});  // closes + flushes the first file
  PrintRow({"3"});
  PrintHeader("done", {});
  unsetenv("WS_CSV_DIR");

  std::ifstream in(dir + "/test_table_one.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,plain");
  std::ifstream in2(dir + "/test_table_two.csv");
  ASSERT_TRUE(in2.good());
  std::getline(in2, line);
  EXPECT_EQ(line, "x");
}

TEST(HarnessTest, FormattersProduceReadableStrings) {
  EXPECT_EQ(FmtPct(0.5), "50%");
  EXPECT_EQ(FmtMs(1.2345), "1.234 ms");
  EXPECT_EQ(FmtMs(123.456), "123.5 ms");
}

TEST(HarnessTest, ProfileEngineAveragesOverQueries) {
  DatasetBundle data = PrepareDataset(TinyConfig(), "tiny-test");
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 3, 4, 17);
  SearchOptions opts;
  opts.top_k = 5;
  opts.threads = 2;
  ProfiledRun run = ProfileEngine(data, queries, opts);
  EXPECT_GT(run.avg.total_ms, 0.0);
  EXPECT_GT(run.avg_answers, 0.0);
  EXPECT_GT(run.peak_storage_bytes, 0u);
}

TEST(HarnessTest, ProfileBanksRuns) {
  DatasetBundle data = PrepareDataset(TinyConfig(), "tiny-test-banks");
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 3, 2, 17);
  banks::BanksOptions opts;
  opts.time_limit_ms = 500.0;
  BanksRun run = ProfileBanks(data, queries, opts);
  EXPECT_GE(run.avg_total_ms, 0.0);
}

}  // namespace
}  // namespace wikisearch::eval
