// Shared test helpers: tiny graph construction, an independent fixpoint
// formulation of hitting levels used as ground truth, and answer invariant
// checks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/fsio.h"
#include "core/activation.h"
#include "core/answer.h"
#include "graph/csr_graph.h"
#include "graph/types.h"

namespace wikisearch::testing {

/// RAII temporary directory (mkdtemp under $TMPDIR, default /tmp); removed
/// recursively on destruction. Used by the durability suites, which need
/// real files for WAL / snapshot / crash-recovery coverage.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base && *base ? base : "/tmp") + "/wstest.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = ::mkdtemp(buf.data());
    if (got != nullptr) path_ = got;
  }
  ~TempDir() {
    if (!path_.empty()) (void)RemoveDirRecursive(path_);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

/// Deterministic per-test RNG seed: an FNV-1a hash of the currently running
/// gtest "Suite.Name" id (parameterized instances hash their full name, so
/// each gets its own stream). Use this instead of a shared literal seed so
/// tests cannot couple through one RNG constant — renaming or reordering a
/// test reseeds only that test.
uint64_t TestSeed();

/// Builds a graph from (src, dst) pairs with node names "n<i>" and a single
/// label "rel"; ids are assigned in order of first appearance (0..max id).
inline KnowledgeGraph MakeGraph(size_t num_nodes,
                                const std::vector<std::pair<int, int>>& edges,
                                const std::string& label = "rel") {
  GraphBuilder b;
  for (size_t i = 0; i < num_nodes; ++i) {
    b.AddNode("n" + std::to_string(i));
  }
  LabelId l = b.AddLabel(label);
  for (auto [s, d] : edges) {
    auto st = b.AddEdge(static_cast<NodeId>(s), static_cast<NodeId>(d), l);
    (void)st;
  }
  return std::move(b).Build();
}

inline constexpr int kIntInf = std::numeric_limits<int>::max() / 4;

/// Independent ground truth for hitting levels, ignoring Central-Node
/// exclusion and early top-k termination: the Bellman-Ford fixpoint of
///
///   h(v,i) = 0                                   if v in T_i
///   h(v,i) = min over neighbors u of
///            1 + max( h(u,i), a(u), a(v)-1 [if v is not a keyword node] )
///
/// bounded by lmax. Matches the engine exactly up to (and including) the
/// first level at which any Central Node appears, since no exclusion has
/// happened yet by then.
inline std::vector<std::vector<int>> FixpointHits(
    const KnowledgeGraph& g, const std::vector<std::vector<NodeId>>& groups,
    const ActivationMap& act, int lmax) {
  const size_t n = g.num_nodes();
  const size_t q = groups.size();
  std::vector<uint8_t> is_kw(n, 0);
  for (const auto& t : groups) {
    for (NodeId v : t) is_kw[v] = 1;
  }
  std::vector<int> a(n);
  for (NodeId v = 0; v < n; ++v) a[v] = act.Level(g.NodeWeight(v));

  std::vector<std::vector<int>> h(q, std::vector<int>(n, kIntInf));
  for (size_t i = 0; i < q; ++i) {
    for (NodeId v : groups[i]) h[i][v] = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (NodeId v = 0; v < n; ++v) {
        if (h[i][v] == 0) continue;
        int best = kIntInf;
        for (const AdjEntry& e : g.Neighbors(v)) {
          NodeId u = e.target;
          if (h[i][u] >= kIntInf) continue;
          int fire = std::max(h[i][u], a[u]);
          if (!is_kw[v]) fire = std::max(fire, a[v] - 1);
          best = std::min(best, 1 + fire);
        }
        if (best <= lmax && best < h[i][v]) {
          h[i][v] = best;
          changed = true;
        }
      }
    }
  }
  return h;
}

/// Ground-truth Central Nodes from fixpoint hits: depth(v) = max_i h(v,i),
/// valid for depths up to and including the first level with any central.
inline std::vector<std::pair<NodeId, int>> FixpointCentrals(
    const std::vector<std::vector<int>>& h, int lmax) {
  if (h.empty()) return {};
  const size_t n = h[0].size();
  std::vector<std::pair<NodeId, int>> out;
  for (NodeId v = 0; v < n; ++v) {
    int d = 0;
    for (const auto& hi : h) d = std::max(d, hi[v]);
    if (d <= lmax) out.emplace_back(v, d);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second < y.second;
    return x.first < y.first;
  });
  return out;
}

/// Checks structural invariants every answer must satisfy: node list sorted
/// and unique, edges reference member nodes, every keyword covered, central
/// present, and the answer connected (over its own edge set, treating the
/// depth-0 single-node answer as trivially connected).
void CheckAnswerInvariants(const KnowledgeGraph& g, const AnswerGraph& answer,
                           size_t num_keywords);

}  // namespace wikisearch::testing
