#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "gen/workload.h"
#include "graph/distance_sampler.h"

namespace wikisearch {
namespace {

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1200;
    cfg.num_communities = 8;
    cfg.num_topic_nodes = 8;
    cfg.vocab_size = 1500;
    cfg.seed = 55;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1000, 3);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

std::vector<std::vector<std::string>> SomeQueries(const Fixture& f,
                                                  size_t count) {
  auto workload = gen::MakeEfficiencyWorkload(f.kb, f.index, 3, count, 9);
  std::vector<std::vector<std::string>> out;
  for (auto& q : workload) out.push_back(q.keywords);
  return out;
}

TEST(BatchSearchTest, MatchesSequentialExecution) {
  Fixture f;
  auto queries = SomeQueries(f, 6);
  BatchOptions opts;
  opts.concurrency = 4;
  opts.search.top_k = 5;
  opts.search.threads = 1;
  auto batch = BatchSearch(&f.kb.graph, &f.index, queries, opts);

  SearchEngine engine(&f.kb.graph, &f.index, opts.search);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << i;
    auto seq = engine.SearchKeywords(queries[i], opts.search);
    ASSERT_TRUE(seq.ok());
    ASSERT_EQ(batch[i]->answers.size(), seq->answers.size()) << i;
    for (size_t a = 0; a < seq->answers.size(); ++a) {
      EXPECT_EQ(batch[i]->answers[a].central, seq->answers[a].central);
      EXPECT_EQ(batch[i]->answers[a].nodes, seq->answers[a].nodes);
    }
  }
}

TEST(BatchSearchTest, PreservesInputOrderAndErrors) {
  Fixture f;
  auto queries = SomeQueries(f, 3);
  queries.insert(queries.begin() + 1, {"zzznotaterm"});
  BatchOptions opts;
  opts.concurrency = 3;
  auto results = BatchSearch(&f.kb.graph, &f.index, queries, opts);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
}

TEST(BatchSearchTest, EmptyBatch) {
  Fixture f;
  EXPECT_TRUE(BatchSearch(&f.kb.graph, &f.index, {}, BatchOptions{}).empty());
}

TEST(BatchSearchTest, SingleWorkerPath) {
  Fixture f;
  auto queries = SomeQueries(f, 2);
  BatchOptions opts;
  opts.concurrency = 1;
  auto results = BatchSearch(&f.kb.graph, &f.index, queries, opts);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
}

TEST(BatchSearchTest, ConcurrencyExceedingQueriesIsSafe) {
  Fixture f;
  auto queries = SomeQueries(f, 2);
  BatchOptions opts;
  opts.concurrency = 16;
  auto results = BatchSearch(&f.kb.graph, &f.index, queries, opts);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace wikisearch
