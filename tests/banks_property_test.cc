// Property tests for the BANKS baselines against an independent reference:
// on random graphs, BANKS-I's best root score must equal the minimum over
// all nodes of the sum of per-keyword Dijkstra distances under the same
// edge-cost model.
#include <gtest/gtest.h>

#include <queue>

#include "banks/banks.h"
#include "common/random.h"
#include "test_util.h"

namespace wikisearch::banks {
namespace {

using ::wikisearch::testing::MakeGraph;

/// Reference Dijkstra with the BANKS entry-cost model.
std::vector<double> RefDijkstra(const KnowledgeGraph& g,
                                const std::vector<NodeId>& sources) {
  std::vector<double> cost(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) cost[v] = BanksEdgeCost(g, v);
  std::vector<double> dist(g.num_nodes(),
                           std::numeric_limits<double>::infinity());
  using E = std::pair<double, NodeId>;
  std::priority_queue<E, std::vector<E>, std::greater<E>> pq;
  for (NodeId s : sources) {
    dist[s] = 0;
    pq.emplace(0, s);
  }
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const AdjEntry& e : g.Neighbors(v)) {
      double nd = d + cost[e.target];
      if (nd < dist[e.target]) {
        dist[e.target] = nd;
        pq.emplace(nd, e.target);
      }
    }
  }
  return dist;
}

class BanksDijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BanksDijkstraPropertyTest, BestScoreMatchesReference) {
  Rng rng(GetParam() * 101 + 3);
  const size_t n = 20 + rng.Uniform(40);
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 1; i < n; ++i) {
    edges.push_back({static_cast<int>(rng.Uniform(i)), static_cast<int>(i)});
  }
  for (size_t e = 0; e < n; ++e) {
    edges.push_back({static_cast<int>(rng.Uniform(n)),
                     static_cast<int>(rng.Uniform(n))});
  }
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    std::string name = "n" + std::to_string(i);
    if (rng.Bernoulli(0.2)) name += " kwa";
    if (rng.Bernoulli(0.2)) name += " kwb";
    b.AddNode(name);
  }
  LabelId l = b.AddLabel("r");
  for (auto [u, v] : edges) {
    ASSERT_TRUE(
        b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), l).ok());
  }
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  if (index.Lookup("kwa").empty() || index.Lookup("kwb").empty()) {
    GTEST_SKIP() << "random graph lacks a keyword";
  }

  BanksEngine engine(&g, &index);
  BanksOptions opts;
  opts.variant = BanksVariant::kBanks1;
  opts.top_k = 1;
  opts.time_limit_ms = 10000;
  auto res = engine.SearchKeywords({"kwa", "kwb"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->answers.empty());

  auto da = RefDijkstra(g, {index.Lookup("kwa").begin(),
                            index.Lookup("kwa").end()});
  auto db = RefDijkstra(g, {index.Lookup("kwb").begin(),
                            index.Lookup("kwb").end()});
  double best = std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < n; ++v) best = std::min(best, da[v] + db[v]);
  EXPECT_NEAR(res->answers[0].score, best, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BanksDijkstraPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

TEST(BanksComparisonTest, Banks2NeverBeatsBanks1Optimum) {
  // BANKS-II is a heuristic over the same scoring; with generous budget its
  // best answer can match but not beat BANKS-I's optimal backward-search
  // score (distances are exact lower bounds).
  Rng rng(::wikisearch::testing::TestSeed());
  GraphBuilder b;
  const size_t n = 60;
  for (size_t i = 0; i < n; ++i) {
    std::string name = "n" + std::to_string(i);
    if (i % 9 == 0) name += " kwa";
    if (i % 11 == 0) name += " kwb";
    b.AddNode(name);
  }
  LabelId l = b.AddLabel("r");
  for (size_t i = 1; i < n; ++i) {
    ASSERT_TRUE(b.AddEdge(static_cast<NodeId>(rng.Uniform(i)),
                          static_cast<NodeId>(i), l)
                    .ok());
  }
  KnowledgeGraph g = std::move(b).Build();
  InvertedIndex index = InvertedIndex::Build(g);
  BanksEngine engine(&g, &index);
  BanksOptions b1, b2;
  b1.variant = BanksVariant::kBanks1;
  b2.variant = BanksVariant::kBanks2;
  b1.time_limit_ms = b2.time_limit_ms = 10000;
  auto r1 = engine.SearchKeywords({"kwa", "kwb"}, b1);
  auto r2 = engine.SearchKeywords({"kwa", "kwb"}, b2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_FALSE(r1->answers.empty());
  ASSERT_FALSE(r2->answers.empty());
  EXPECT_GE(r2->answers[0].score, r1->answers[0].score - 1e-4);
}

}  // namespace
}  // namespace wikisearch::banks
