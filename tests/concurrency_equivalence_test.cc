// Concurrent-serving equivalence: one SearchEngine instance, hit by many
// threads at once, must return answers bit-identical to the same queries
// run serially — across every engine kind, with and without a shared
// SearchStatePool, and with a (non-firing) deadline attached. This is the
// load-bearing guarantee behind removing the service's engine mutex: if
// any per-query state leaked between concurrent searches, answers would
// diverge here. Runs under the tsan/asan presets, where a leak shows up as
// a data race even when the answers happen to agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/context_cache.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

/// Canonical byte-exact serialization of a result: every field that reaches
/// the response JSON, with scores rendered as raw IEEE-754 bits so "close"
/// doubles do not compare equal.
std::string Canonical(const Result<SearchResult>& r) {
  std::ostringstream out;
  if (!r.ok()) {
    out << "error:" << r.status().ToString();
    return out.str();
  }
  for (const std::string& kw : r->keywords) out << kw << ';';
  out << "|levels=" << r->stats.levels
      << "|centrals=" << r->stats.num_centrals << '|';
  for (const AnswerGraph& a : r->answers) {
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(a.score));
    std::memcpy(&score_bits, &a.score, sizeof(score_bits));
    out << "a{" << a.central << ',' << a.depth << ',' << score_bits << ",n[";
    for (NodeId v : a.nodes) out << v << ',';
    out << "],e[";
    for (const AnswerEdge& e : a.edges) {
      out << e.src << '-' << e.label << '-' << e.dst << ',';
    }
    out << "]}";
  }
  return out.str();
}

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1200;
    cfg.num_summary_nodes = 6;
    cfg.num_topic_nodes = 14;
    cfg.num_communities = 8;
    cfg.vocab_size = 1600;
    cfg.seed = 181;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 2000, 7);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::vector<std::vector<std::string>> DrawQueries(const Fixture& f,
                                                  size_t count) {
  Rng rng(testing::TestSeed());
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(3);
    for (size_t i = 0; i < 2 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  return queries;
}

struct Config {
  EngineKind kind;
  bool pooled;
  bool deadline;
  bool context_cache;
};

std::string ConfigLabel(const Config& c) {
  std::string s = EngineKindName(c.kind);
  s += c.pooled ? "/pooled" : "/fresh";
  s += c.deadline ? "/deadline" : "/no-deadline";
  s += c.context_cache ? "/ctx-cache" : "";
  return s;
}

void RunEquivalence(const Config& cfg) {
  SCOPED_TRACE(ConfigLabel(cfg));
  Fixture& f = SharedFixture();
  const auto queries = DrawQueries(f, 12);

  SearchOptions opts;
  opts.engine = cfg.kind;
  opts.top_k = 8;
  opts.threads = 4;
  // A deadline generous enough to never fire: the deadline plumbing (clock
  // checks, degraded-path branches) must be exercised without introducing
  // load-dependent nondeterminism.
  if (cfg.deadline) opts.deadline_ms = 60000.0;

  SearchStatePool pool;
  QueryContextCache context_cache(64);
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  if (cfg.pooled) engine.SetStatePool(&pool);
  if (cfg.context_cache) engine.SetContextCache(&context_cache);

  // Serial baselines from the very same engine instance.
  std::vector<std::string> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(Canonical(engine.SearchKeywords(q, opts)));
  }

  // Then 8 threads × all queries concurrently against that instance; every
  // thread must reproduce every baseline byte for byte.
  constexpr int kThreads = 8;
  std::vector<std::vector<std::string>> got(
      kThreads, std::vector<std::string>(queries.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting offsets so different queries overlap in time.
      for (size_t j = 0; j < queries.size(); ++j) {
        size_t i = (j + static_cast<size_t>(t)) % queries.size();
        got[t][i] = Canonical(engine.SearchKeywords(queries[i], opts));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[t][i], expected[i])
          << "thread " << t << " query " << i;
    }
  }
}

class ConcurrencyEquivalenceTest
    : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ConcurrencyEquivalenceTest, FreshStates) {
  RunEquivalence({GetParam(), /*pooled=*/false, /*deadline=*/false,
                  /*context_cache=*/false});
}

TEST_P(ConcurrencyEquivalenceTest, PooledStates) {
  RunEquivalence({GetParam(), /*pooled=*/true, /*deadline=*/false,
                  /*context_cache=*/false});
}

TEST_P(ConcurrencyEquivalenceTest, PooledStatesWithDeadline) {
  RunEquivalence({GetParam(), /*pooled=*/true, /*deadline=*/true,
                  /*context_cache=*/false});
}

TEST_P(ConcurrencyEquivalenceTest, FreshStatesWithDeadline) {
  RunEquivalence({GetParam(), /*pooled=*/false, /*deadline=*/true,
                  /*context_cache=*/false});
}

TEST_P(ConcurrencyEquivalenceTest, PooledStatesWithContextCache) {
  RunEquivalence({GetParam(), /*pooled=*/true, /*deadline=*/false,
                  /*context_cache=*/true});
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, ConcurrencyEquivalenceTest,
                         ::testing::Values(EngineKind::kSequential,
                                           EngineKind::kCpuParallel,
                                           EngineKind::kCpuDynamic,
                                           EngineKind::kGpuSim),
                         [](const auto& info) {
                           // Gtest names must be alphanumeric; the engine
                           // labels ("CPU-Par") are not.
                           switch (info.param) {
                             case EngineKind::kSequential:
                               return std::string("Sequential");
                             case EngineKind::kCpuParallel:
                               return std::string("CpuParallel");
                             case EngineKind::kCpuDynamic:
                               return std::string("CpuDynamic");
                             default:
                               return std::string("GpuSim");
                           }
                         });

}  // namespace
}  // namespace wikisearch
