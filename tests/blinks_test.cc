#include <gtest/gtest.h>

#include "blinks/blinks_engine.h"
#include "blinks/blinks_index.h"
#include "graph/graph_algos.h"
#include "test_util.h"

namespace wikisearch::blinks {
namespace {

struct Fixture {
  Fixture() {
    GraphBuilder b;
    b.AddTriple("alpha start", "r", "mid one");
    b.AddTriple("mid one", "r", "mid two");
    b.AddTriple("mid two", "r", "omega end");
    b.AddTriple("mid one", "r", "branch alpha");
    graph = std::move(b).Build();
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(BlinksIndexTest, DistancesMatchReferenceBfs) {
  Fixture f;
  BlinksIndex blinks = BlinksIndex::Build(f.graph, f.index, /*radius=*/4);
  // Reference: multi-source BFS from nodes containing "alpha".
  std::span<const NodeId> sources = f.index.Lookup("alpha");
  std::vector<NodeId> src(sources.begin(), sources.end());
  auto ref = BfsDistances(f.graph, src);
  for (NodeId v = 0; v < f.graph.num_nodes(); ++v) {
    int got = blinks.Distance("alpha", v);
    if (ref[v] == kUnreachable || ref[v] > 4) {
      EXPECT_EQ(got, -1) << v;
    } else {
      EXPECT_EQ(got, static_cast<int>(ref[v])) << v;
    }
  }
}

TEST(BlinksIndexTest, RadiusCapsLists) {
  Fixture f;
  BlinksIndex tight = BlinksIndex::Build(f.graph, f.index, /*radius=*/1);
  BlinksIndex wide = BlinksIndex::Build(f.graph, f.index, /*radius=*/4);
  EXPECT_LT(tight.stats().entries, wide.stats().entries);
  EXPECT_LT(tight.stats().bytes, wide.stats().bytes);
  // "omega" is 3 hops from "alpha start": invisible at radius 1.
  NodeId start = f.graph.FindNode("alpha start");
  EXPECT_EQ(tight.Distance("omega", start), -1);
  EXPECT_EQ(wide.Distance("omega", start), 3);
}

TEST(BlinksIndexTest, ListsSortedByDistance) {
  Fixture f;
  BlinksIndex blinks = BlinksIndex::Build(f.graph, f.index, 4);
  auto list = blinks.List("alpha");
  ASSERT_FALSE(list.empty());
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LE(list[i - 1].dist, list[i].dist);
  }
  EXPECT_EQ(list[0].dist, 0);  // sources first
}

TEST(BlinksIndexTest, MinDfFiltersRareTerms) {
  Fixture f;
  BlinksIndex filtered = BlinksIndex::Build(f.graph, f.index, 4,
                                            /*min_df=*/2);
  EXPECT_TRUE(filtered.List("omega").empty());   // df == 1
  EXPECT_FALSE(filtered.List("alpha").empty());  // df == 2
}

TEST(BlinksEngineTest, FindsBestRootByDistanceSum) {
  Fixture f;
  BlinksIndex blinks = BlinksIndex::Build(f.graph, f.index, 4);
  BlinksEngine engine(&f.graph, &f.index, &blinks);
  BlinksOptions opts;
  opts.top_k = 3;
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->answers.empty());
  // Path: alpha start - mid one - mid two - omega end; also branch alpha at
  // mid one. Best roots have score 3 (anywhere on the alpha..omega path).
  EXPECT_EQ(static_cast<int>(res->answers[0].score), 3);
  for (const AnswerGraph& a : res->answers) {
    wikisearch::testing::CheckAnswerInvariants(f.graph, a, 2);
  }
}

TEST(BlinksEngineTest, UnknownKeywordNotFound) {
  Fixture f;
  BlinksIndex blinks = BlinksIndex::Build(f.graph, f.index, 2);
  BlinksEngine engine(&f.graph, &f.index, &blinks);
  EXPECT_FALSE(engine.SearchKeywords({"zzz"}, BlinksOptions{}).ok());
  EXPECT_FALSE(engine.SearchKeywords({}, BlinksOptions{}).ok());
}

TEST(BlinksEngineTest, RadiusLimitsReach) {
  Fixture f;
  BlinksIndex blinks = BlinksIndex::Build(f.graph, f.index, /*radius=*/1);
  BlinksEngine engine(&f.graph, &f.index, &blinks);
  BlinksOptions opts;
  // alpha and omega are 3 hops apart: no root sees both within radius 1.
  auto res = engine.SearchKeywords({"alpha", "omega"}, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->answers.empty());
}

}  // namespace
}  // namespace wikisearch::blinks
