#include "test_util.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace wikisearch::testing {

uint64_t TestSeed() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string id = info == nullptr ? "no-current-test"
                                   : std::string(info->test_suite_name()) +
                                         "." + info->name();
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : id) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

void CheckAnswerInvariants(const KnowledgeGraph& g, const AnswerGraph& answer,
                           size_t num_keywords) {
  ASSERT_FALSE(answer.nodes.empty());
  ASSERT_TRUE(std::is_sorted(answer.nodes.begin(), answer.nodes.end()));
  ASSERT_TRUE(std::adjacent_find(answer.nodes.begin(), answer.nodes.end()) ==
              answer.nodes.end());
  ASSERT_TRUE(answer.ContainsNode(answer.central));
  ASSERT_EQ(answer.keyword_nodes.size(), num_keywords);
  for (const auto& kn : answer.keyword_nodes) {
    EXPECT_FALSE(kn.empty()) << "keyword not covered";
    for (NodeId v : kn) {
      EXPECT_TRUE(answer.ContainsNode(v));
    }
  }
  // Every edge must be a real KB edge between member nodes.
  for (const AnswerEdge& e : answer.edges) {
    EXPECT_TRUE(answer.ContainsNode(e.src));
    EXPECT_TRUE(answer.ContainsNode(e.dst));
    bool found = false;
    for (const AdjEntry& adj : g.Neighbors(e.src)) {
      if (adj.target == e.dst && adj.label == e.label && !adj.reverse) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "answer edge is not a KB triple";
  }
  // Connectivity over the answer's own edges.
  if (answer.nodes.size() > 1) {
    std::map<NodeId, std::vector<NodeId>> adj;
    for (const AnswerEdge& e : answer.edges) {
      adj[e.src].push_back(e.dst);
      adj[e.dst].push_back(e.src);
    }
    std::set<NodeId> seen{answer.central};
    std::vector<NodeId> stack{answer.central};
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : adj[v]) {
        if (seen.insert(w).second) stack.push_back(w);
      }
    }
    EXPECT_EQ(seen.size(), answer.nodes.size())
        << "answer graph is not connected";
  }
}

}  // namespace wikisearch::testing
