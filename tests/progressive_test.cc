// Progressive-search API: per-level progress reporting and cooperative
// cancellation returning the best partial answers.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using ::wikisearch::testing::MakeGraph;

struct ChainKb {
  // Two keyword endpoints on a long chain with a short side answer:
  // kw1 - a - kw2   (fast answer at level 1)
  // kw1 - long chain - kw2' matches appear deeper too.
  ChainKb() {
    GraphBuilder b;
    b.AddTriple("start alphaterm", "r", "join middle");
    b.AddTriple("join middle", "r", "end betaterm");
    // Long tail: more alphaterm/betaterm pairs far apart.
    std::string prev = "end betaterm";
    for (int i = 0; i < 8; ++i) {
      std::string next = "chain node " + std::to_string(i);
      b.AddTriple(prev, "r", next);
      prev = next;
    }
    b.AddTriple(prev, "r", "far alphaterm outpost");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 200, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(ProgressiveTest, CallbackInvokedPerLevel) {
  ChainKb kb;
  SearchOptions opts;
  opts.top_k = 50;  // force multiple levels
  SearchEngine engine(&kb.graph, &kb.index, opts);
  std::vector<LevelProgress> snapshots;
  auto res = engine.SearchKeywordsProgressive(
      {"alphaterm", "betaterm"}, opts, [&](const LevelProgress& p) {
        snapshots.push_back(p);
        return true;
      });
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->stats.cancelled);
  ASSERT_GT(snapshots.size(), 1u);
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].level, static_cast<int>(i));
    EXPECT_GT(snapshots[i].frontier_size, 0u);
    if (i > 0) {
      EXPECT_GE(snapshots[i].centrals_so_far,
                snapshots[i - 1].centrals_so_far);
    }
  }
}

TEST(ProgressiveTest, CancellationReturnsPartialAnswers) {
  ChainKb kb;
  SearchOptions opts;
  opts.top_k = 50;
  SearchEngine engine(&kb.graph, &kb.index, opts);
  auto res = engine.SearchKeywordsProgressive(
      {"alphaterm", "betaterm"}, opts, [&](const LevelProgress& p) {
        // Cancel as soon as any Central Node exists.
        return p.centrals_so_far == 0;
      });
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->stats.cancelled);
  EXPECT_FALSE(res->answers.empty());  // partial answers still materialized
  for (const AnswerGraph& a : res->answers) {
    testing::CheckAnswerInvariants(kb.graph, a, 2);
  }
}

TEST(ProgressiveTest, ImmediateCancelYieldsNothingButSucceeds) {
  ChainKb kb;
  SearchOptions opts;
  SearchEngine engine(&kb.graph, &kb.index, opts);
  auto res = engine.SearchKeywordsProgressive(
      {"alphaterm", "betaterm"}, opts,
      [](const LevelProgress&) { return false; });
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->stats.cancelled);
  EXPECT_TRUE(res->answers.empty());
  EXPECT_EQ(res->stats.levels, 0);
}

TEST(ProgressiveTest, NullCallbackEqualsPlainSearch) {
  ChainKb kb;
  SearchOptions opts;
  opts.top_k = 5;
  SearchEngine engine(&kb.graph, &kb.index, opts);
  auto plain = engine.SearchKeywords({"alphaterm", "betaterm"}, opts);
  auto prog = engine.SearchKeywordsProgressive({"alphaterm", "betaterm"},
                                               opts, nullptr);
  ASSERT_TRUE(plain.ok() && prog.ok());
  ASSERT_EQ(plain->answers.size(), prog->answers.size());
  for (size_t i = 0; i < plain->answers.size(); ++i) {
    EXPECT_EQ(plain->answers[i].central, prog->answers[i].central);
    EXPECT_EQ(plain->answers[i].nodes, prog->answers[i].nodes);
  }
}

TEST(ProgressiveTest, DynamicEngineHonorsCallback) {
  ChainKb kb;
  SearchOptions opts;
  opts.top_k = 50;
  opts.engine = EngineKind::kCpuDynamic;
  SearchEngine engine(&kb.graph, &kb.index, opts);
  std::vector<LevelProgress> snapshots;
  auto res = engine.SearchKeywordsProgressive(
      {"alphaterm", "betaterm"}, opts, [&](const LevelProgress& p) {
        snapshots.push_back(p);
        return true;
      });
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->stats.cancelled);
  ASSERT_GT(snapshots.size(), 1u);
  for (size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].level, static_cast<int>(i));
  }
}

TEST(ProgressiveTest, DynamicEngineCancellationReturnsPartialAnswers) {
  ChainKb kb;
  SearchOptions opts;
  opts.top_k = 50;
  opts.engine = EngineKind::kCpuDynamic;
  SearchEngine engine(&kb.graph, &kb.index, opts);
  auto res = engine.SearchKeywordsProgressive(
      {"alphaterm", "betaterm"}, opts,
      [&](const LevelProgress& p) { return p.centrals_so_far == 0; });
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->stats.cancelled);
  EXPECT_FALSE(res->answers.empty());
  for (const AnswerGraph& a : res->answers) {
    testing::CheckAnswerInvariants(kb.graph, a, 2);
  }
}

}  // namespace
}  // namespace wikisearch
