// Tests of the lock-free metrics registry (DESIGN.md §8): bucket geometry,
// the documented quantile error bound proven against exact sorted quantiles
// on random streams, counter exactness under heavy concurrency, the
// Prometheus exposition (including %.17g round-tripping), and the engine's
// per-query reporting — whose histogram sums must equal the SearchStats /
// PhaseTimings sums exactly, not approximately.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace wikisearch::obs {
namespace {

// ------------------------------ Bucket geometry ------------------------------

TEST(HistogramBucketTest, UnderflowAndOverflowBuckets) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, Histogram::kMinExp) / 2),
            0u);
  EXPECT_EQ(Histogram::BucketIndex(std::ldexp(1.0, Histogram::kMaxExp)),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_EQ(
      Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
      Histogram::kNumBuckets - 1);
}

TEST(HistogramBucketTest, LowerBoundsMapBackToTheirBucket) {
  for (size_t idx = 1; idx + 1 < Histogram::kNumBuckets; ++idx) {
    double lo = Histogram::BucketLowerBound(idx);
    EXPECT_EQ(Histogram::BucketIndex(lo), idx) << "idx=" << idx;
  }
}

TEST(HistogramBucketTest, ValuesLieInTheirBucketWithBoundedWidth) {
  Rng rng(::wikisearch::testing::TestSeed());
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the full in-range span.
    double e = -20.0 + 50.0 * rng.UniformDouble();
    double v = std::pow(2.0, e);
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_GT(idx, 0u);
    ASSERT_LT(idx, Histogram::kNumBuckets - 1);
    double lo = Histogram::BucketLowerBound(idx);
    double hi = Histogram::BucketUpperBound(idx);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, hi);
    // The documented error bound: bucket width over lower bound.
    EXPECT_LE((hi - lo) / lo, Histogram::kMaxRelativeError * (1 + 1e-12));
  }
}

// --------------------------- Quantile error bound ----------------------------

// The property the header documents: for in-range values the interpolated
// quantile lies in the same bucket as the exact order statistic
// v_sorted[ceil(q*N)-1], so it is within kMaxRelativeError of it.
class HistogramQuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramQuantileProperty, MatchesExactSortedQuantiles) {
  Rng rng(::wikisearch::testing::TestSeed());
  Histogram hist;
  const size_t n = 1 + rng.Uniform(4000);
  std::vector<double> values;
  values.reserve(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Log-uniform milliseconds between 1us and ~17min — the realistic span
    // of the latency metrics, comfortably in-range.
    double v = std::pow(10.0, -3.0 + 9.0 * rng.UniformDouble());
    values.push_back(v);
    hist.Observe(v);
    sum += v;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, n);
  // Single-threaded observation: the shard accumulates in stream order and
  // the other shards contribute exact zeros, so the sum is the same double.
  EXPECT_EQ(snap.sum, sum);

  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    double exact = sorted[rank - 1];
    double est = snap.Quantile(q);
    EXPECT_LE(std::abs(est - exact),
              exact * Histogram::kMaxRelativeError * (1 + 1e-12))
        << "q=" << q << " n=" << n << " exact=" << exact << " est=" << est;
  }
}

INSTANTIATE_TEST_SUITE_P(Streams, HistogramQuantileProperty,
                         ::testing::Range(0, 8));

TEST(HistogramQuantileTest, EdgeCases) {
  Histogram hist;
  EXPECT_EQ(hist.Snapshot().Quantile(0.5), 0.0);  // empty
  hist.Observe(5.0);
  HistogramSnapshot one = hist.Snapshot();
  // A single observation: every quantile interpolates inside its bucket.
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_LE(std::abs(one.Quantile(q) - 5.0),
              5.0 * Histogram::kMaxRelativeError);
  }
  // Overflow observations report the overflow bucket's lower bound.
  Histogram over;
  over.Observe(1e300);
  EXPECT_EQ(over.Snapshot().Quantile(0.99),
            std::ldexp(1.0, Histogram::kMaxExp));
}

// ------------------------------- Concurrency ---------------------------------

TEST(CounterTest, ExactUnderEightThreadsTimes100k) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kIncs);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(HistogramTest, ExactCountAndSumUnderConcurrency) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      // Small integers: every partial sum is exact in double, so the total
      // is order-independent and must come out exact despite shard sharing.
      for (int i = 0; i < kObs; ++i) {
        hist.Observe(static_cast<double>(1 + (i % 7)));
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObs);
  uint64_t per_thread = 0;
  for (int i = 0; i < kObs; ++i) per_thread += 1 + (i % 7);
  EXPECT_EQ(snap.sum, static_cast<double>(kThreads * per_thread));
  uint64_t bucketed = 0;
  for (uint64_t b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

// ----------------------------- Counter bridging ------------------------------

TEST(CounterTest, AdvanceToRaisesButNeverLowers) {
  Counter c;
  c.AdvanceTo(10);
  EXPECT_EQ(c.Value(), 10u);
  c.Inc(5);
  EXPECT_EQ(c.Value(), 15u);
  c.AdvanceTo(12);  // already past: no-op
  EXPECT_EQ(c.Value(), 15u);
  c.AdvanceTo(20);
  EXPECT_EQ(c.Value(), 20u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.25);
  EXPECT_EQ(g.Value(), 3.75);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

// ------------------------------- Exposition ----------------------------------

TEST(RegistryTest, PrometheusExposition) {
  MetricRegistry reg;
  reg.GetCounter("ws_t_total{engine=\"a\"}")->Inc(3);
  reg.GetCounter("ws_t_total{engine=\"b\"}")->Inc(4);
  reg.GetGauge("ws_t_gauge")->Set(2.5);
  Histogram* h = reg.GetHistogram("ws_t_ms");
  h->Observe(0.5);
  h->Observe(3.0);

  std::string out = reg.RenderPrometheus();
  // One # TYPE line per family even with two labeled children.
  EXPECT_EQ(out.find("# TYPE ws_t_total counter"),
            out.rfind("# TYPE ws_t_total counter"));
  EXPECT_NE(out.find("# TYPE ws_t_gauge gauge"), std::string::npos);
  EXPECT_NE(out.find("# TYPE ws_t_ms histogram"), std::string::npos);

  EXPECT_EQ(FindMetricValue(out, "ws_t_total{engine=\"a\"}"), 3.0);
  EXPECT_EQ(FindMetricValue(out, "ws_t_total{engine=\"b\"}"), 4.0);
  EXPECT_EQ(FindMetricValue(out, "ws_t_gauge"), 2.5);
  EXPECT_EQ(FindMetricValue(out, "ws_t_ms_count"), 2.0);
  EXPECT_EQ(FindMetricValue(out, "ws_t_ms_sum"), 3.5);
  EXPECT_EQ(FindMetricValue(out, "ws_t_ms_bucket{le=\"+Inf\"}"), 2.0);
  EXPECT_FALSE(FindMetricValue(out, "ws_nope_total").has_value());

  // Buckets are cumulative: each non-empty bucket line is >= the previous.
  double last = 0.0;
  size_t pos = 0;
  while ((pos = out.find("ws_t_ms_bucket{", pos)) != std::string::npos) {
    size_t eol = out.find('\n', pos);
    std::string line = out.substr(pos, eol - pos);
    double v = std::strtod(line.substr(line.rfind(' ') + 1).c_str(), nullptr);
    EXPECT_GE(v, last);
    last = v;
    pos = eol;
  }
  EXPECT_EQ(last, 2.0);
}

TEST(RegistryTest, SeventeenDigitRenderingRoundTripsExactly) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("ws_rt_ms");
  Rng rng(::wikisearch::testing::TestSeed());
  for (int i = 0; i < 100; ++i) {
    h->Observe(std::pow(10.0, -2.0 + 6.0 * rng.UniformDouble()));
  }
  HistogramSnapshot snap = h->Snapshot();
  auto scraped = FindMetricValue(reg.RenderPrometheus(), "ws_rt_ms_sum");
  ASSERT_TRUE(scraped.has_value());
  // %.17g round-trips every finite double: bitwise equality, no tolerance.
  EXPECT_EQ(*scraped, snap.sum);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("ws_r_total");
  c->Inc(7);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(reg.GetCounter("ws_r_total"), c);  // same object
}

TEST(RegistryDeathTest, KindMismatchAborts) {
  MetricRegistry reg;
  reg.GetCounter("ws_kind_total");
  EXPECT_DEATH(reg.GetGauge("ws_kind_total"), "CHECK");
}

// --------------------------- Engine reporting --------------------------------

struct EngineFixture {
  EngineFixture() {
    GraphBuilder b;
    b.AddTriple("xml toolkit", "part of", "data tools");
    b.AddTriple("rdf engine", "part of", "data tools");
    b.AddTriple("sql planner", "part of", "data tools");
    b.AddTriple("data tools", "used by", "search teams");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 100, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

// The acceptance criterion of ISSUE 3: the scraped histogram aggregates
// must match the SearchStats / PhaseTimings sums exactly — same doubles,
// both through Snapshot() and through the rendered exposition.
TEST(EngineMetricsTest, HistogramSumsMatchSearchStatsExactly) {
  EngineFixture f;
  MetricRegistry reg;
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 2;
  opts.engine = EngineKind::kCpuParallel;
  opts.metrics = &reg;
  SearchEngine engine(&f.graph, &f.index, opts);

  constexpr int kQueries = 7;
  double total_sum = 0.0, expansion_sum = 0.0, topdown_sum = 0.0;
  uint64_t levels_sum = 0, answers_sum = 0, centrals_sum = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto res = engine.SearchKeywords({"xml", "rdf"}, opts);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    total_sum += res->timings.total_ms;
    expansion_sum += res->timings.expansion_ms;
    topdown_sum += res->timings.topdown_ms;
    levels_sum += static_cast<uint64_t>(res->stats.levels_completed);
    answers_sum += res->answers.size();
    centrals_sum += res->stats.num_centrals;
  }

  HistogramSnapshot lat =
      reg.GetHistogram("ws_search_latency_ms{engine=\"CPU-Par\"}")->Snapshot();
  EXPECT_EQ(lat.count, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(lat.sum, total_sum);  // exact FP equality, not EXPECT_NEAR
  EXPECT_EQ(reg.GetHistogram("ws_search_stage_ms{stage=\"expansion\"}")
                ->Snapshot()
                .sum,
            expansion_sum);
  EXPECT_EQ(
      reg.GetHistogram("ws_search_stage_ms{stage=\"topdown\"}")->Snapshot().sum,
      topdown_sum);

  EXPECT_EQ(reg.GetCounter("ws_search_total{engine=\"CPU-Par\"}")->Value(),
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(reg.GetCounter("ws_search_levels_total")->Value(), levels_sum);
  EXPECT_EQ(reg.GetCounter("ws_search_answers_total")->Value(), answers_sum);
  EXPECT_EQ(reg.GetCounter("ws_search_centrals_total")->Value(), centrals_sum);

  // The stage-2 accounting counters partition the centrals counter exactly:
  // extracted + pruned + skipped == centrals, across all queries.
  EXPECT_EQ(
      reg.GetCounter("ws_search_candidates_extracted_total")->Value() +
          reg.GetCounter("ws_search_candidates_pruned_total")->Value() +
          reg.GetCounter("ws_search_candidates_skipped_total")->Value(),
      centrals_sum);

  // The same equalities must survive the text exposition round trip.
  std::string out = reg.RenderPrometheus();
  EXPECT_EQ(FindMetricValue(out, "ws_search_latency_ms_sum{engine=\"CPU-Par\"}"),
            total_sum);
  EXPECT_EQ(
      FindMetricValue(out, "ws_search_latency_ms_count{engine=\"CPU-Par\"}"),
      static_cast<double>(kQueries));
  EXPECT_EQ(FindMetricValue(out, "ws_search_stage_ms_sum{stage=\"expansion\"}"),
            expansion_sum);
  EXPECT_EQ(FindMetricValue(out, "ws_search_total{engine=\"CPU-Par\"}"),
            static_cast<double>(kQueries));
}

TEST(EngineMetricsTest, PoolUtilizationCountersAdvance) {
  EngineFixture f;
  MetricRegistry reg;
  SearchOptions opts;
  opts.threads = 4;
  opts.engine = EngineKind::kCpuParallel;
  opts.metrics = &reg;
  SearchEngine engine(&f.graph, &f.index, opts);
  ASSERT_TRUE(engine.SearchKeywords({"xml", "rdf"}, opts).ok());
  uint64_t jobs = reg.GetCounter("ws_pool_jobs_total")->Value();
  EXPECT_GT(jobs, 0u);
  // Deltas accumulate across queries on the same pool: another query can
  // only raise the published totals.
  ASSERT_TRUE(engine.SearchKeywords({"xml", "sql"}, opts).ok());
  EXPECT_GE(reg.GetCounter("ws_pool_jobs_total")->Value(), jobs);
}

TEST(EngineMetricsTest, RecordMetricsOffLeavesRegistryEmpty) {
  EngineFixture f;
  MetricRegistry reg;
  SearchOptions opts;
  opts.engine = EngineKind::kSequential;
  opts.metrics = &reg;
  opts.record_metrics = false;
  SearchEngine engine(&f.graph, &f.index, opts);
  ASSERT_TRUE(engine.SearchKeywords({"xml", "rdf"}, opts).ok());
  EXPECT_EQ(reg.RenderPrometheus(), "");
}

TEST(EngineMetricsTest, TimeoutAndDegradedCountersFire) {
  EngineFixture f;
  MetricRegistry reg;
  SearchOptions opts;
  opts.engine = EngineKind::kSequential;
  opts.metrics = &reg;
  opts.deadline_ms = 1.0;
  opts.fault_injection = [](const char* point) {
    if (std::string_view(point) == "bottomup:level") {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  };
  SearchEngine engine(&f.graph, &f.index, opts);
  auto res = engine.SearchKeywords({"xml", "rdf"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->stats.timed_out);
  EXPECT_EQ(reg.GetCounter("ws_search_timeout_total")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("ws_search_degraded_total")->Value(), 1u);
}

}  // namespace
}  // namespace wikisearch::obs
