// Parameterized sweep over the engine's option space: every combination
// must return invariant-satisfying, deterministic answers.
#include <gtest/gtest.h>

#include <tuple>

#include "core/engine.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "gen/workload.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

struct SweepFixture {
  SweepFixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1500;
    cfg.num_communities = 8;
    cfg.num_topic_nodes = 8;
    cfg.vocab_size = 2000;
    cfg.seed = 123;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1500, 9);
    index = InvertedIndex::Build(kb.graph);
    auto workload = gen::MakeEfficiencyWorkload(kb, index, 4, 2, 31);
    for (auto& q : workload) queries.push_back(q.keywords);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
  std::vector<std::vector<std::string>> queries;
};

SweepFixture& Shared() {
  static SweepFixture* f = new SweepFixture();
  return *f;
}

using SweepParam = std::tuple<double /*alpha*/, int /*top_k*/,
                              double /*lambda*/, int /*engine*/>;

class OptionsSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OptionsSweepTest, InvariantsAndDeterminism) {
  auto [alpha, top_k, lambda, engine_idx] = GetParam();
  SweepFixture& f = Shared();
  SearchOptions opts;
  opts.alpha = alpha;
  opts.top_k = top_k;
  opts.lambda = lambda;
  opts.threads = 2;
  opts.engine = static_cast<EngineKind>(engine_idx);
  SearchEngine engine(&f.kb.graph, &f.index, opts);
  for (const auto& kws : f.queries) {
    Result<SearchResult> first = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    EXPECT_LE(first->answers.size(), static_cast<size_t>(top_k));
    for (const AnswerGraph& a : first->answers) {
      testing::CheckAnswerInvariants(f.kb.graph, a, first->keywords.size());
      EXPECT_LE(a.depth, first->stats.levels);
      EXPECT_GE(a.score, 0.0);
    }
    // Score ordering.
    for (size_t i = 1; i < first->answers.size(); ++i) {
      EXPECT_LE(first->answers[i - 1].score, first->answers[i].score);
    }
    // Determinism.
    Result<SearchResult> second = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(second.ok());
    ASSERT_EQ(first->answers.size(), second->answers.size());
    for (size_t i = 0; i < first->answers.size(); ++i) {
      EXPECT_EQ(first->answers[i].central, second->answers[i].central);
      EXPECT_EQ(first->answers[i].nodes, second->answers[i].nodes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptionsSweepTest,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.4),
                       ::testing::Values(1, 5, 20),
                       ::testing::Values(0.0, 0.2),
                       ::testing::Values(0, 1, 3)));  // seq, cpu-par, gpu-sim

}  // namespace
}  // namespace wikisearch
