#include <gtest/gtest.h>

#include "common/json.h"

namespace wikisearch {
namespace {

TEST(JsonEscapeTest, PassthroughPlain) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.BeginArray();
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("x");
  w.Key("i");
  w.Int(-3);
  w.Key("u");
  w.UInt(7);
  w.Key("d");
  w.Double(1.5);
  w.Key("b");
  w.Bool(true);
  w.Key("n");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            R"({"s":"x","i":-3,"u":7,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("k");
  w.String("v");
  w.EndObject();
  w.EndArray();
  w.Key("b");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), R"({"a":[1,2,{"k":"v"}],"b":[]})");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonWriterTest, EscapedKeys) {
  JsonWriter w;
  w.BeginObject();
  w.Key("quote\"key");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), R"({"quote\"key":1})");
}

TEST(JsonWriterDeathTest, UnbalancedContainersCaught) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        std::string s = std::move(w).Take();
      },
      "CHECK");
}

}  // namespace
}  // namespace wikisearch
