#include <gtest/gtest.h>

#include "common/json.h"

namespace wikisearch {
namespace {

TEST(JsonEscapeTest, PassthroughPlain) {
  EXPECT_EQ(JsonEscape("hello world"), "hello world");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.BeginArray();
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("x");
  w.Key("i");
  w.Int(-3);
  w.Key("u");
  w.UInt(7);
  w.Key("d");
  w.Double(1.5);
  w.Key("b");
  w.Bool(true);
  w.Key("n");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            R"({"s":"x","i":-3,"u":7,"d":1.5,"b":true,"n":null})");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("k");
  w.String("v");
  w.EndObject();
  w.EndArray();
  w.Key("b");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), R"({"a":[1,2,{"k":"v"}],"b":[]})");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonWriterTest, EscapedKeys) {
  JsonWriter w;
  w.BeginObject();
  w.Key("quote\"key");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), R"({"quote\"key":1})");
}

// --------------------------------- Parser ------------------------------------

TEST(JsonParseTest, Scalars) {
  auto v = JsonParse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  v = JsonParse(" true ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());
  EXPECT_TRUE(v->boolean);
  v = JsonParse("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->boolean);
  v = JsonParse("-12.5e2");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_number());
  EXPECT_EQ(v->number, -1250.0);
  v = JsonParse("\"hi\"");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_string());
  EXPECT_EQ(v->str, "hi");
}

TEST(JsonParseTest, ObjectsPreserveOrderAndFindWorks) {
  auto v = JsonParse(R"({"b":1,"a":[2,3,{"k":null}],"c":{}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "b");
  EXPECT_EQ(v->object[1].first, "a");
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 3.0);
  EXPECT_TRUE(a->array[2].Find("k")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_EQ(a->Find("not-an-object"), nullptr);
}

TEST(JsonParseTest, StringEscapesIncludingSurrogatePairs) {
  auto v = JsonParse(R"("a\"b\\c\/d\n\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "a\"b\\c/d\n\tA");
  // U+1F600 as an escaped surrogate pair -> 4-byte UTF-8.
  v = JsonParse(R"("\uD83D\uDE00")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "\xF0\x9F\x98\x80");
  // BMP escape -> 2-byte UTF-8; raw multi-byte UTF-8 passes through.
  v = JsonParse(R"("\u00E9")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "\xC3\xA9");
  v = JsonParse("\"\xC3\xA9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->str, "\xC3\xA9");
  // Lone high surrogate is an error.
  EXPECT_FALSE(JsonParse(R"("\uD83D")").ok());
  EXPECT_FALSE(JsonParse(R"("\uZZZZ")").ok());
}

TEST(JsonParseTest, StrictNumberGrammar) {
  EXPECT_FALSE(JsonParse("01").ok());     // leading zero
  EXPECT_FALSE(JsonParse("+1").ok());     // leading plus
  EXPECT_FALSE(JsonParse("1.").ok());     // bare decimal point
  EXPECT_FALSE(JsonParse(".5").ok());
  EXPECT_FALSE(JsonParse("1e").ok());     // empty exponent
  EXPECT_TRUE(JsonParse("0").ok());
  EXPECT_TRUE(JsonParse("-0.5e-2").ok());
}

TEST(JsonParseTest, ErrorsCarryOffsetAndTrailingGarbageRejected) {
  auto v = JsonParse(R"({"a":1} extra)");
  ASSERT_FALSE(v.ok());
  v = JsonParse(R"({"a":)");
  ASSERT_FALSE(v.ok());
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonParse("[1,]").ok());
  EXPECT_FALSE(JsonParse("nul").ok());
}

TEST(JsonParseTest, DepthLimitCutsOffRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(JsonParse(deep).ok());
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(JsonParse(ok).ok());
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("line\nbreak \"quoted\"");
  w.Key("nums");
  w.BeginArray();
  w.Int(-3);
  w.UInt(12345678901234ull);
  w.Double(0.125);
  w.EndArray();
  w.Key("flag");
  w.Bool(false);
  w.Key("none");
  w.Null();
  w.EndObject();
  auto v = JsonParse(std::move(w).Take());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->str, "line\nbreak \"quoted\"");
  ASSERT_EQ(v->Find("nums")->array.size(), 3u);
  EXPECT_EQ(v->Find("nums")->array[0].number, -3.0);
  EXPECT_EQ(v->Find("nums")->array[2].number, 0.125);
  EXPECT_FALSE(v->Find("flag")->boolean);
  EXPECT_TRUE(v->Find("none")->is_null());
}

TEST(JsonWriterDeathTest, UnbalancedContainersCaught) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        std::string s = std::move(w).Take();
      },
      "CHECK");
}

}  // namespace
}  // namespace wikisearch
