#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace wikisearch {
namespace {

// ---------------------------- Status / Result -------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::IoError("disk"); }
Status Propagates() {
  WS_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIoError);
}

// ------------------------------- Rng ---------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(ZipfTest, RankZeroMostFrequent) {
  Rng rng(5);
  ZipfSampler zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(ZipfTest, CoversSupport) {
  Rng rng(5);
  ZipfSampler zipf(3, 1.0);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(zipf.Sample(rng));
  EXPECT_EQ(seen.size(), 3u);
}

// ----------------------------- ThreadPool -----------------------------------

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelForDynamic(100, 7, [&](size_t i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(10000);
    pool.ParallelForDynamic(hits.size(), 13, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ChunkedCoversRange) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  pool.ParallelForChunked(1000, 37, [&](size_t lo, size_t hi) {
    total.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelForDynamic(0, 1, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelForDynamic(round + 1, 1, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), round + 1);
  }
}

TEST(ThreadPoolTest, RunOnAllHitsEveryWorkerOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.RunOnAll([&](int worker) {
    hits[static_cast<size_t>(worker)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DefaultGrainReasonable) {
  EXPECT_EQ(DefaultGrain(0, 4), 1u);
  EXPECT_GE(DefaultGrain(100, 1), 100u);
  size_t g = DefaultGrain(1000, 4);
  EXPECT_GE(g, 1u);
  EXPECT_LE(g, 1000u);
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(t.ElapsedMs(), 0.0);
  EXPECT_GE(t.ElapsedUs(), t.ElapsedMs());  // us value numerically larger
}

}  // namespace
}  // namespace wikisearch
