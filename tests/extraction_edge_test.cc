// Edge-case tests for stage 2:
//  * Thm. V.4 extraction must exclude a neighbor that satisfies the
//    hitting-level recurrence but had already been identified as a Central
//    Node when the edge would have fired (centrals never expand);
//  * the level-cover rebuild must fall back to B_i's own sources when
//    pruning removed every kept anchor of keyword i from DAG_i.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/extraction.h"
#include "core/level_cover.h"
#include "core/top_down.h"
#include "test_util.h"

namespace wikisearch {
namespace {

TEST(ExtractionEdgeTest, CentralPredecessorsAreExcluded) {
  // vn is hit by all three keywords at level 1 and becomes a Central Node,
  // so it never expands. vf is later hit by B_x through `a` only; vn still
  // satisfies the Thm.-V.4 equality towards vf and must be rejected by the
  // central-exclusion check.
  GraphBuilder b;
  NodeId x0 = b.AddNode("x0 kwx");
  NodeId y0 = b.AddNode("y0 kwy");
  NodeId z0 = b.AddNode("z0 kwz");
  NodeId vn = b.AddNode("vn early central");
  NodeId a = b.AddNode("a honest path");
  NodeId vf = b.AddNode("vf junction");
  NodeId c = b.AddNode("c late central");
  NodeId w = b.AddNode("w y-relay");
  NodeId w2 = b.AddNode("w2 z-relay");
  LabelId l = b.AddLabel("r");
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {x0, vn}, {y0, vn}, {z0, vn}, {x0, a}, {a, vf}, {vn, vf},
           {vf, c}, {y0, w}, {w, c}, {z0, w2}, {w2, c}}) {
    WS_CHECK(b.AddEdge(u, v, l).ok());
  }
  KnowledgeGraph g = std::move(b).Build();
  WS_CHECK(g.SetNodeWeights(std::vector<double>(g.num_nodes(), 0.0)).ok());

  std::vector<std::vector<NodeId>> groups = {{x0}, {y0}, {z0}};
  QueryContext ctx(g, {}, groups, ActivationMap(2.0, 0.5), 20);
  SearchOptions opts;
  opts.top_k = 100;  // run to exhaustion
  ThreadPool pool(1);
  SearchState state(g.num_nodes(), 3);
  PhaseTimings timings;
  BottomUpSearch(ctx, opts, &pool, &state, &timings, false);

  // vn is the depth-1 central; c becomes central later.
  ASSERT_FALSE(state.centrals().empty());
  EXPECT_EQ(state.centrals()[0].node, vn);
  EXPECT_EQ(state.centrals()[0].depth, 1);
  const CentralCandidate* c_cand = nullptr;
  for (const auto& cand : state.centrals()) {
    if (cand.node == c) c_cand = &cand;
  }
  ASSERT_NE(c_cand, nullptr) << "c must become central";

  StateHitLevels hits(state);
  ExtractedGraph eg = ExtractCentralGraph(ctx, hits, *c_cand);
  using Edge = std::pair<NodeId, NodeId>;
  // B_x hitting paths of c: x0 -> a -> vf -> c. The equality also holds for
  // (vn, vf) — same hit level, same activation — but vn was already central
  // when that edge would have fired, so it must be excluded.
  EXPECT_NE(std::find(eg.dag[0].begin(), eg.dag[0].end(), Edge{a, vf}),
            eg.dag[0].end());
  EXPECT_NE(std::find(eg.dag[0].begin(), eg.dag[0].end(), Edge{x0, a}),
            eg.dag[0].end());
  EXPECT_NE(std::find(eg.dag[0].begin(), eg.dag[0].end(), Edge{vf, c}),
            eg.dag[0].end());
  EXPECT_EQ(std::find(eg.dag[0].begin(), eg.dag[0].end(), Edge{vn, vf}),
            eg.dag[0].end())
      << "central predecessor leaked into the hitting-path DAG";
}

TEST(LevelCoverEdgeTest, AnchorFallbackKeepsKeywordConnected) {
  // Hand-built extraction result: s0 covers both keywords but lies only in
  // DAG_0; s1 is keyword 1's sole source in DAG_1. Level-cover keeps s0 and
  // prunes s1's bucket; the rebuild must fall back to DAG_1's own sources so
  // keyword 1 stays physically connected to the central node.
  GraphBuilder b;
  NodeId s0 = b.AddNode("s0 both keywords");
  NodeId s1 = b.AddNode("s1 second keyword");
  NodeId c = b.AddNode("central");
  LabelId l = b.AddLabel("r");
  WS_CHECK(b.AddEdge(s0, c, l).ok());
  WS_CHECK(b.AddEdge(s1, c, l).ok());
  KnowledgeGraph g = std::move(b).Build();
  WS_CHECK(g.SetNodeWeights({0.0, 0.0, 0.0}).ok());

  ExtractedGraph eg;
  eg.central = c;
  eg.depth = 1;
  eg.dag = {{{s0, c}}, {{s1, c}}};
  auto mask = [&](NodeId v) -> uint64_t {
    if (v == s0) return 0b11;  // covers keywords 0 and 1
    if (v == s1) return 0b10;  // covers keyword 1 only
    return 0;
  };
  AnswerGraph a = BuildAnswer(g, eg, 2, mask, /*enable_level_cover=*/true,
                              /*lambda=*/0.2);
  // s0's bucket (2 keywords) completes coverage; s1's bucket is pruned, but
  // keyword 1's DAG has no kept anchor, so its sources are restored.
  EXPECT_EQ(a.nodes, (std::vector<NodeId>{s0, s1, c}));
  ASSERT_EQ(a.edges.size(), 2u);
  testing::CheckAnswerInvariants(g, a, 2);
}

}  // namespace
}  // namespace wikisearch
