#include <gtest/gtest.h>

#include "banks/banks.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch::banks {
namespace {

struct SmallKb {
  SmallKb() {
    GraphBuilder b;
    // Two "papers" linked to shared venue and authors.
    b.AddTriple("paper alpha indexing", "published in", "vldb venue");
    b.AddTriple("paper beta ranking", "published in", "vldb venue");
    b.AddTriple("paper alpha indexing", "written by", "alice author");
    b.AddTriple("paper beta ranking", "written by", "alice author");
    b.AddTriple("paper gamma search", "written by", "bob author");
    b.AddTriple("paper gamma search", "published in", "sigmod venue");
    graph = std::move(b).Build();
    AttachNodeWeights(&graph);
    AttachAverageDistance(&graph, 500, 3);
    index = InvertedIndex::Build(graph);
  }
  KnowledgeGraph graph;
  InvertedIndex index;
};

TEST(BanksEdgeCostTest, PenalizesHighInDegree) {
  GraphBuilder b;
  for (int i = 0; i < 10; ++i) b.AddTriple("s" + std::to_string(i), "r", "hub");
  b.AddTriple("s0", "r2", "leaf");
  KnowledgeGraph g = std::move(b).Build();
  EXPECT_GT(BanksEdgeCost(g, g.FindNode("hub")),
            BanksEdgeCost(g, g.FindNode("leaf")));
  EXPECT_GE(BanksEdgeCost(g, g.FindNode("s1")), 1.0);  // zero in-degree -> 1
}

class BanksVariantTest : public ::testing::TestWithParam<BanksVariant> {};

TEST_P(BanksVariantTest, AnswersCoverAllKeywords) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  BanksOptions opts;
  opts.variant = GetParam();
  opts.top_k = 5;
  Result<BanksResult> res =
      engine.SearchKeywords({"indexing", "ranking"}, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_FALSE(res->answers.empty());
  for (const AnswerGraph& a : res->answers) {
    wikisearch::testing::CheckAnswerInvariants(kb.graph, a, 2);
  }
}

TEST_P(BanksVariantTest, BestRootJoinsNearestLeaves) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  BanksOptions opts;
  opts.variant = GetParam();
  opts.top_k = 3;
  Result<BanksResult> res =
      engine.SearchKeywords({"alpha", "beta"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->answers.empty());
  // Both "paper alpha"/"paper beta" connect via `vldb venue` or
  // `alice author`; the best tree must contain both papers.
  const AnswerGraph& best = res->answers[0];
  EXPECT_TRUE(best.ContainsNode(kb.graph.FindNode("paper alpha indexing")));
  EXPECT_TRUE(best.ContainsNode(kb.graph.FindNode("paper beta ranking")));
  EXPECT_LE(best.nodes.size(), 3u);
}

TEST_P(BanksVariantTest, ScoresAreSortedAscending) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  BanksOptions opts;
  opts.variant = GetParam();
  opts.top_k = 10;
  Result<BanksResult> res = engine.SearchKeywords({"paper", "author"}, opts);
  ASSERT_TRUE(res.ok());
  for (size_t i = 1; i < res->answers.size(); ++i) {
    EXPECT_LE(res->answers[i - 1].score, res->answers[i].score);
  }
}

TEST_P(BanksVariantTest, SingleKeywordReturnsKeywordNodes) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  BanksOptions opts;
  opts.variant = GetParam();
  opts.top_k = 5;
  Result<BanksResult> res = engine.SearchKeywords({"paper"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->answers.empty());
  // Roots are the keyword nodes themselves at distance 0.
  EXPECT_EQ(res->answers[0].score, 0.0);
  EXPECT_EQ(res->answers[0].nodes.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, BanksVariantTest,
                         ::testing::Values(BanksVariant::kBanks1,
                                           BanksVariant::kBanks2));

TEST(BanksEngineTest, EmptyQueryRejected) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  EXPECT_FALSE(engine.SearchKeywords({}, BanksOptions{}).ok());
}

TEST(BanksEngineTest, UnknownKeywordsNotFound) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  Result<BanksResult> res =
      engine.SearchKeywords({"zzzmissing"}, BanksOptions{});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(BanksEngineTest, TimeBudgetHonored) {
  SmallKb kb;
  BanksEngine engine(&kb.graph, &kb.index);
  BanksOptions opts;
  opts.time_limit_ms = 0.0;  // expire immediately
  opts.max_pops = 2000;      // also bound work
  Result<BanksResult> res = engine.SearchKeywords({"paper", "author"}, opts);
  ASSERT_TRUE(res.ok());
  // With a zero budget the run must stop quickly (either flagged as timed
  // out after the first check or finished naturally on this tiny graph).
  EXPECT_LE(res->pops, 2001u);
}

TEST(BanksEngineTest, Banks1DistancesAreShortestCosts) {
  // On a weighted path, the root between two keywords must be the cost
  // midpoint, and the answer tree must be the whole path.
  GraphBuilder b;
  b.AddTriple("left keyword", "r", "mid one");
  b.AddTriple("mid one", "r", "mid two");
  b.AddTriple("mid two", "r", "right keyword");
  KnowledgeGraph g = std::move(b).Build();
  AttachNodeWeights(&g);
  AttachAverageDistance(&g, 100, 3);
  InvertedIndex index = InvertedIndex::Build(g);
  BanksEngine engine(&g, &index);
  BanksOptions opts;
  opts.variant = BanksVariant::kBanks1;
  opts.top_k = 1;
  Result<BanksResult> res = engine.SearchKeywords({"left", "right"}, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->answers.size(), 1u);
  EXPECT_EQ(res->answers[0].nodes.size(), 4u);  // entire path retained
}

}  // namespace
}  // namespace wikisearch::banks
