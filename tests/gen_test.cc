#include <gtest/gtest.h>

#include <set>

#include "core/node_weight.h"
#include "gen/vocab.h"
#include "gen/wikigen.h"
#include "gen/workload.h"
#include "graph/distance_sampler.h"
#include "graph/graph_algos.h"

namespace wikisearch::gen {
namespace {

WikiGenConfig TinyConfig() {
  WikiGenConfig cfg;
  cfg.num_entities = 800;
  cfg.num_summary_nodes = 4;
  cfg.num_topic_nodes = 8;
  cfg.num_communities = 8;
  cfg.num_labels = 40;
  cfg.vocab_size = 1200;
  cfg.seed = 7;
  return cfg;
}

const GeneratedKb& TinyKb() {
  static const GeneratedKb* kb = new GeneratedKb(Generate(TinyConfig()));
  return *kb;
}

TEST(VocabTest, DistinctTermsOfRequestedSize) {
  Vocabulary v(500, 3);
  EXPECT_EQ(v.size(), 500u);
  std::set<std::string> seen(v.terms().begin(), v.terms().end());
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& t : v.terms()) {
    EXPECT_GE(t.size(), 3u);
    for (char c : t) EXPECT_TRUE(c >= 'a' && c <= 'z');
  }
}

TEST(VocabTest, DeterministicInSeed) {
  Vocabulary a(100, 42), b(100, 42), c(100, 43);
  EXPECT_EQ(a.terms(), b.terms());
  EXPECT_NE(a.terms(), c.terms());
}

TEST(WikiGenTest, DeterministicInSeed) {
  GeneratedKb a = Generate(TinyConfig());
  GeneratedKb b = Generate(TinyConfig());
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.num_triples(), b.graph.num_triples());
  EXPECT_EQ(a.graph.NodeName(17), b.graph.NodeName(17));
  EXPECT_EQ(a.meta.community_terms, b.meta.community_terms);
}

TEST(WikiGenTest, GraphIsConnected) {
  const GeneratedKb& kb = TinyKb();
  ComponentInfo info = ConnectedComponents(kb.graph);
  EXPECT_EQ(info.num_components, 1u);
}

TEST(WikiGenTest, NodeAndEdgeCountsPlausible) {
  const GeneratedKb& kb = TinyKb();
  WikiGenConfig cfg = TinyConfig();
  EXPECT_GE(kb.graph.num_nodes(),
            cfg.num_entities + cfg.num_summary_nodes + cfg.num_topic_nodes);
  // Mean out-degree ~7 plus attachments.
  EXPECT_GT(kb.graph.num_triples(), cfg.num_entities * 3);
  EXPECT_LT(kb.graph.num_triples(), cfg.num_entities * 40);
}

TEST(WikiGenTest, SummaryNodesAreHeaviest) {
  GeneratedKb kb = Generate(TinyConfig());
  AttachNodeWeights(&kb.graph);
  // Summary hubs receive many same-labeled in-edges; their normalized
  // degree-of-summary weight must dominate typical entities.
  double max_summary = 0.0;
  for (NodeId s : kb.meta.summary_nodes) {
    max_summary = std::max(max_summary, kb.graph.NodeWeight(s));
  }
  EXPECT_GT(max_summary, 0.9);
  double entity_avg = 0.0;
  size_t count = 0;
  for (NodeId v = 0; v < kb.graph.num_nodes(); ++v) {
    if (kb.meta.community_of_node[v] >= 0) {
      entity_avg += kb.graph.NodeWeight(v);
      ++count;
    }
  }
  entity_avg /= static_cast<double>(count);
  EXPECT_LT(entity_avg, 0.5);
}

TEST(WikiGenTest, SummaryInEdgesSingleLabeled) {
  const GeneratedKb& kb = TinyKb();
  for (NodeId s : kb.meta.summary_nodes) {
    std::set<LabelId> labels;
    size_t in = 0;
    for (const AdjEntry& e : kb.graph.Neighbors(s)) {
      if (e.reverse) {
        labels.insert(e.label);
        ++in;
      }
    }
    if (in > 0) EXPECT_EQ(labels.size(), 1u) << "summary node " << s;
  }
}

TEST(WikiGenTest, CommunityMetadataConsistent) {
  const GeneratedKb& kb = TinyKb();
  WikiGenConfig cfg = TinyConfig();
  EXPECT_EQ(kb.meta.num_communities, cfg.num_communities);
  EXPECT_EQ(kb.meta.community_of_node.size(), kb.graph.num_nodes());
  EXPECT_EQ(kb.meta.community_terms.size(), cfg.num_communities);
  // Community vocabularies are disjoint.
  std::set<std::string> all;
  size_t total = 0;
  for (const auto& terms : kb.meta.community_terms) {
    EXPECT_EQ(terms.size(), cfg.community_vocab);
    all.insert(terms.begin(), terms.end());
    total += terms.size();
  }
  EXPECT_EQ(all.size(), total);
  // Summary nodes belong to no community.
  for (NodeId s : kb.meta.summary_nodes) {
    EXPECT_EQ(kb.meta.community_of_node[s], -1);
  }
  // Topic nodes belong to their community.
  for (NodeId t : kb.meta.topic_nodes) {
    EXPECT_GE(kb.meta.community_of_node[t], 0);
  }
}

TEST(WikiGenTest, AverageDistanceSmallWorld) {
  GeneratedKb kb = Generate(TinyConfig());
  DistanceSample s = SampleAverageDistance(kb.graph, 2000, 5);
  EXPECT_GT(s.mean, 1.5);
  EXPECT_LT(s.mean, 8.0);  // Table II reports 3.7-3.9 at Wikidata scale
}

// ------------------------------- Workload -----------------------------------

struct WorkloadFixture {
  WorkloadFixture() : kb(Generate(TinyConfig())) {
    index = InvertedIndex::Build(kb.graph);
  }
  GeneratedKb kb;
  InvertedIndex index;
};

TEST(WorkloadTest, EfficiencyQueriesValid) {
  WorkloadFixture f;
  auto queries = MakeEfficiencyWorkload(f.kb, f.index, 4, 12, 11);
  ASSERT_EQ(queries.size(), 12u);
  for (const Query& q : queries) {
    EXPECT_EQ(q.keywords.size(), 4u);
    EXPECT_GE(q.target_community, 0);
    std::set<std::string> unique(q.keywords.begin(), q.keywords.end());
    EXPECT_EQ(unique.size(), q.keywords.size());
    for (const auto& kw : q.keywords) {
      EXPECT_FALSE(f.index.Lookup(kw).empty()) << kw;
    }
    EXPECT_GT(AverageKeywordFrequency(q, f.index), 0.0);
  }
}

TEST(WorkloadTest, EfficiencyWorkloadDeterministic) {
  WorkloadFixture f;
  auto a = MakeEfficiencyWorkload(f.kb, f.index, 6, 5, 3);
  auto b = MakeEfficiencyWorkload(f.kb, f.index, 6, 5, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
}

TEST(WorkloadTest, EffectivenessSuiteShape) {
  WorkloadFixture f;
  auto queries = MakeEffectivenessWorkload(f.kb, f.index, 5);
  ASSERT_EQ(queries.size(), 11u);
  EXPECT_EQ(queries[0].id, "Q1");
  EXPECT_EQ(queries[10].id, "Q11");
  // Q4-Q7 are phrase-split with a distractor community.
  for (int i = 3; i <= 6; ++i) {
    EXPECT_GE(queries[static_cast<size_t>(i)].distractor_community, 0)
        << queries[static_cast<size_t>(i)].id;
    EXPECT_NE(queries[static_cast<size_t>(i)].distractor_community,
              queries[static_cast<size_t>(i)].target_community);
  }
  // Q10/Q11 judge everything relevant.
  EXPECT_EQ(queries[9].target_community, -1);
  EXPECT_EQ(queries[10].target_community, -1);
  // Q10 uses head terms: much larger kwf than Q11's rare terms (Table V).
  EXPECT_GT(AverageKeywordFrequency(queries[9], f.index),
            AverageKeywordFrequency(queries[10], f.index) * 3);
}

}  // namespace
}  // namespace wikisearch::gen
