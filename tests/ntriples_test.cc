#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/ntriples.h"

namespace wikisearch {
namespace {

TEST(UnescapeTest, Passthrough) {
  auto r = UnescapeNTriplesLiteral("hello world");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello world");
}

TEST(UnescapeTest, StandardEscapes) {
  auto r = UnescapeNTriplesLiteral(R"(a\"b\\c\nd\te)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "a\"b\\c\nd\te");
}

TEST(UnescapeTest, UnicodeEscapes) {
  auto r = UnescapeNTriplesLiteral(R"(caf\u00E9)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "caf\xC3\xA9");  // é in UTF-8
  auto wide = UnescapeNTriplesLiteral(R"(\U0001F600)");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(*wide, "\xF0\x9F\x98\x80");  // 😀
}

TEST(UnescapeTest, RejectsBadEscapes) {
  EXPECT_FALSE(UnescapeNTriplesLiteral("dangling\\").ok());
  EXPECT_FALSE(UnescapeNTriplesLiteral("\\q").ok());
  EXPECT_FALSE(UnescapeNTriplesLiteral("\\u12").ok());
  EXPECT_FALSE(UnescapeNTriplesLiteral("\\uZZZZ").ok());
}

TEST(NTriplesTest, ParsesIriTriples) {
  auto g = ParseNTriples(
      "<http://ex.org/Douglas_Adams> <http://ex.org/prop/instance_of> "
      "<http://ex.org/Q5> .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_triples(), 1u);
  // Localized names: last path segment, underscores to spaces.
  EXPECT_NE(g->FindNode("Douglas Adams"), kInvalidNode);
  EXPECT_NE(g->FindNode("Q5"), kInvalidNode);
  EXPECT_EQ(g->LabelName(0), "instance of");
}

TEST(NTriplesTest, HashFragmentLocalization) {
  auto g = ParseNTriples(
      "<http://ex.org/onto#Person> <http://ex.org/onto#label> "
      "<http://ex.org/onto#Human> .\n");
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->FindNode("Person"), kInvalidNode);
}

TEST(NTriplesTest, FullIrisWhenLocalizationOff) {
  NTriplesOptions opts;
  opts.localize_iris = false;
  auto g = ParseNTriples(
      "<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .\n", opts);
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->FindNode("http://ex.org/a"), kInvalidNode);
}

TEST(NTriplesTest, LiteralsBecomeNodes) {
  auto g = ParseNTriples(
      "<http://ex.org/Q42> <http://ex.org/label> \"Douglas Adams\"@en .\n"
      "<http://ex.org/Q42> <http://ex.org/age> "
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_triples(), 2u);
  EXPECT_NE(g->FindNode("Douglas Adams"), kInvalidNode);
  EXPECT_NE(g->FindNode("42"), kInvalidNode);
}

TEST(NTriplesTest, LiteralEscapesDecoded) {
  auto g = ParseNTriples(
      "<http://ex.org/x> <http://ex.org/says> \"he said \\\"hi\\\"\" .\n");
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->FindNode("he said \"hi\""), kInvalidNode);
}

TEST(NTriplesTest, BlankNodes) {
  auto g = ParseNTriples(
      "_:b0 <http://ex.org/p> <http://ex.org/x> .\n"
      "_:b0 <http://ex.org/p> _:b1 .\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_triples(), 2u);
  EXPECT_NE(g->FindNode("_:b0"), kInvalidNode);
  EXPECT_NE(g->FindNode("_:b1"), kInvalidNode);
}

TEST(NTriplesTest, CommentsAndBlankLines) {
  auto g = ParseNTriples(
      "# a comment\n\n<http://e/a> <http://e/p> <http://e/b> .\n\r\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_triples(), 1u);
}

TEST(NTriplesTest, MalformedLineFailsWithLineNumber) {
  auto g = ParseNTriples(
      "<http://e/a> <http://e/p> <http://e/b> .\n"
      "this is not a triple\n");
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, MissingDotRejected) {
  EXPECT_FALSE(ParseNTriples("<http://e/a> <http://e/p> <http://e/b>\n").ok());
}

TEST(NTriplesTest, SkipMalformedMode) {
  NTriplesOptions opts;
  opts.skip_malformed = true;
  auto g = ParseNTriples(
      "garbage line\n<http://e/a> <http://e/p> <http://e/b> .\n", opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_triples(), 1u);
}

TEST(NTriplesTest, FileRoundTrip) {
  GraphBuilder b;
  b.AddTriple("alpha one", "relates to", "beta \"two\"");
  b.AddTriple("beta \"two\"", "part of", "gamma");
  KnowledgeGraph original = std::move(b).Build();
  std::string path = ::testing::TempDir() + "/ws_roundtrip.nt";
  ASSERT_TRUE(SaveNTriples(original, path).ok());
  auto loaded = LoadNTriples(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_triples(), original.num_triples());
  // Subjects are serialized as urn:ws: IRIs whose local part percent-encodes
  // spaces; objects round-trip as literals with the exact name.
  EXPECT_NE(loaded->FindNode("beta \"two\""), kInvalidNode);
  std::remove(path.c_str());
}

TEST(NTriplesTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadNTriples("/nonexistent/x.nt").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace wikisearch
