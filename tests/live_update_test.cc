// Live-update equivalence suite (DESIGN.md §10). The load-bearing contract:
// after ANY sequence of applied mutation batches, the served
// (base snapshot + delta overlay) state is byte-identical — structure,
// weights, sampled average distance, postings, and query answers across all
// engine kinds — to a cold from-scratch rebuild of the same history. Plus
// the lifecycle contracts: batch atomicity on rejection, pinned handles
// surviving publishes, exact fold/rebuild agreement after compaction, and
// end-to-end cache invalidation through the HTTP service.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <chrono>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "graph/graph_view.h"
#include "live/compactor.h"
#include "live/snapshot_manager.h"
#include "server/search_service.h"
#include "test_util.h"
#include "text/index_view.h"
#include "text/tokenizer.h"

namespace wikisearch {
namespace {

using live::SnapshotManager;
using live::TextOp;
using live::TripleOp;
using live::UpdateBatch;

constexpr size_t kDistancePairs = 2000;
constexpr uint64_t kDistanceSeed = 7;

std::string Canonical(const Result<SearchResult>& r) {
  std::ostringstream out;
  if (!r.ok()) {
    out << "error:" << r.status().ToString();
    return out.str();
  }
  for (const std::string& kw : r->keywords) out << kw << ';';
  out << "|levels=" << r->stats.levels
      << "|centrals=" << r->stats.num_centrals << '|';
  for (const AnswerGraph& a : r->answers) {
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(a.score));
    std::memcpy(&score_bits, &a.score, sizeof(score_bits));
    out << "a{" << a.central << ',' << a.depth << ',' << score_bits << ",n[";
    for (NodeId v : a.nodes) out << v << ',';
    out << "],e[";
    for (const AnswerEdge& e : a.edges) {
      out << e.src << '-' << e.label << '-' << e.dst << ',';
    }
    out << "]}";
  }
  return out.str();
}

/// The independent ground truth: a name-level replay of the full mutation
/// history that rebuilds the KB from scratch through GraphBuilder /
/// InvertedIndex::Build — the exact offline pipeline. The overlay must
/// match whatever this produces, id for id and byte for byte.
struct MirrorKb {
  std::vector<std::string> node_order;   // first-appearance order
  std::vector<std::string> label_order;  // first-appearance order
  std::set<std::string> known_nodes;
  std::set<std::string> known_labels;
  struct T {
    std::string s, p, o;
  };
  std::vector<T> triples;
  std::unordered_map<std::string, std::string> text;  // node -> extra text

  void InitFromBase(const KnowledgeGraph& g) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      node_order.push_back(g.NodeName(v));
      known_nodes.insert(g.NodeName(v));
    }
    for (LabelId l = 0; l < static_cast<LabelId>(g.num_labels()); ++l) {
      label_order.push_back(g.LabelName(l));
      known_labels.insert(g.LabelName(l));
    }
    // Forward entries only; each triple is stored twice in the CSR.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (const AdjEntry& e : g.Neighbors(v)) {
        if (e.reverse == 0) {
          triples.push_back(
              {g.NodeName(v), g.LabelName(e.label), g.NodeName(e.target)});
        }
      }
    }
  }

  void AddName(const std::string& name) {
    if (known_nodes.insert(name).second) node_order.push_back(name);
  }

  void Apply(const UpdateBatch& b) {
    for (const TripleOp& op : b.add) {
      AddName(op.subject);
      AddName(op.object);
      if (known_labels.insert(op.predicate).second) {
        label_order.push_back(op.predicate);
      }
      triples.push_back({op.subject, op.predicate, op.object});
    }
    for (const TripleOp& op : b.remove) {
      auto it = std::find_if(triples.begin(), triples.end(), [&](const T& t) {
        return t.s == op.subject && t.p == op.predicate && t.o == op.object;
      });
      ASSERT_NE(it, triples.end()) << "mirror remove of missing triple";
      triples.erase(it);
    }
    for (const TextOp& op : b.text) text[op.node] = op.text;
  }

  struct Rebuilt {
    KnowledgeGraph graph;
    InvertedIndex index;
  };

  Rebuilt Rebuild() const {
    GraphBuilder b;
    for (const std::string& name : node_order) b.AddNode(name);
    for (const std::string& name : label_order) b.AddLabel(name);
    for (const T& t : triples) b.AddTriple(t.s, t.p, t.o);
    Rebuilt out;
    out.graph = std::move(b).Build();
    AttachNodeWeights(&out.graph);
    AttachAverageDistance(&out.graph, kDistancePairs, kDistanceSeed);
    out.index = InvertedIndex::Build(out.graph);
    for (const auto& [name, txt] : text) {
      if (txt.empty()) continue;
      NodeId v = out.graph.FindNode(name);
      EXPECT_NE(v, kInvalidNode) << name;
      if (v == kInvalidNode) continue;
      out.index.AddNodeTerms(v, AnalyzeText(txt, out.index.options()));
    }
    return out;
  }
};

// GoogleTest's ASSERT_* macros need a void return type; wrap the uses above.
void ApplyToMirror(MirrorKb* m, const UpdateBatch& b) { m->Apply(b); }

/// Asserts the served view equals the cold rebuild, field by field and byte
/// by byte: ids, adjacency, weights, A, and every posting list.
void ExpectViewEqualsRebuild(const GraphView& view, const IndexView& iview,
                             const MirrorKb::Rebuilt& want) {
  const KnowledgeGraph& wg = want.graph;
  ASSERT_EQ(view.num_nodes(), wg.num_nodes());
  ASSERT_EQ(view.num_labels(), wg.num_labels());
  EXPECT_EQ(view.num_triples(), wg.num_triples());
  EXPECT_EQ(view.num_adjacency_entries(), wg.num_adjacency_entries());
  for (NodeId v = 0; v < wg.num_nodes(); ++v) {
    EXPECT_EQ(view.NodeName(v), wg.NodeName(v)) << "node " << v;
    EXPECT_EQ(view.FindNode(wg.NodeName(v)), v);
    std::span<const AdjEntry> got = view.Neighbors(v);
    std::span<const AdjEntry> exp = wg.Neighbors(v);
    ASSERT_EQ(got.size(), exp.size()) << "degree of node " << v;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].target, exp[i].target) << "node " << v << " entry " << i;
      EXPECT_EQ(got[i].label, exp[i].label) << "node " << v << " entry " << i;
      EXPECT_EQ(got[i].reverse, exp[i].reverse)
          << "node " << v << " entry " << i;
    }
    // Bit-exact: weights feed answer scores, which must match a rebuild.
    EXPECT_EQ(view.NodeWeight(v), wg.NodeWeight(v)) << "weight of " << v;
  }
  for (LabelId l = 0; l < static_cast<LabelId>(wg.num_labels()); ++l) {
    EXPECT_EQ(view.LabelName(l), wg.LabelName(l)) << "label " << l;
  }
  EXPECT_EQ(view.average_distance(), wg.average_distance());
  EXPECT_EQ(view.average_distance_deviation(),
            wg.average_distance_deviation());

  ASSERT_EQ(iview.num_terms(), want.index.num_terms());
  EXPECT_EQ(iview.num_postings(), want.index.num_postings());
  for (const std::string& term : want.index.Terms()) {
    std::span<const NodeId> got = iview.LookupTerm(term);
    std::span<const NodeId> exp = want.index.LookupTerm(term);
    ASSERT_EQ(got.size(), exp.size()) << "postings of '" << term << "'";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], exp[i]) << "posting " << i << " of '" << term << "'";
    }
  }
}

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 400;
    cfg.num_summary_nodes = 4;
    cfg.num_topic_nodes = 8;
    cfg.num_communities = 5;
    cfg.vocab_size = 700;
    cfg.seed = 83;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, kDistancePairs, kDistanceSeed);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

SnapshotManager::Config ManagerConfig() {
  SnapshotManager::Config cfg;
  cfg.distance_pairs = kDistancePairs;
  cfg.distance_seed = kDistanceSeed;
  cfg.compact_threshold_batches = 0;  // tests compact explicitly
  return cfg;
}

/// Draws a random valid batch against the mirror's current state.
UpdateBatch DrawBatch(Rng* rng, const MirrorKb& mirror, int batch_id) {
  UpdateBatch b;
  const size_t adds = 2 + rng->Uniform(5);
  for (size_t i = 0; i < adds; ++i) {
    TripleOp op;
    // Mix of existing and brand-new endpoints; new names are query-able
    // pseudo-words so text search exercises overlay-born nodes.
    if (rng->Bernoulli(0.4)) {
      op.subject = "livenode" + std::to_string(batch_id) + "x" +
                   std::to_string(rng->Uniform(4));
    } else {
      op.subject = mirror.node_order[rng->Uniform(mirror.node_order.size())];
    }
    if (rng->Bernoulli(0.4)) {
      op.object = "livenode" + std::to_string(batch_id) + "y" +
                  std::to_string(rng->Uniform(4));
    } else {
      op.object = mirror.node_order[rng->Uniform(mirror.node_order.size())];
    }
    op.predicate = rng->Bernoulli(0.2)
                       ? "livepred" + std::to_string(rng->Uniform(3))
                       : mirror.label_order[rng->Uniform(
                             mirror.label_order.size())];
    b.add.push_back(std::move(op));
  }
  const size_t removes = rng->Uniform(3);
  for (size_t i = 0; i < removes && !mirror.triples.empty(); ++i) {
    const MirrorKb::T& t =
        mirror.triples[rng->Uniform(mirror.triples.size())];
    // May remove a triple this batch also adds — removes run after adds in
    // Apply, so the multiset stays consistent either way.
    b.remove.push_back(TripleOp{t.s, t.p, t.o});
  }
  const size_t texts = rng->Uniform(3);
  for (size_t i = 0; i < texts; ++i) {
    TextOp op;
    op.node = mirror.node_order[rng->Uniform(mirror.node_order.size())];
    if (rng->Bernoulli(0.25)) {
      op.text.clear();  // clear any previous text
    } else {
      op.text = "extra" + std::to_string(rng->Uniform(6)) + " shared" +
                std::to_string(rng->Uniform(3));
    }
    b.text.push_back(std::move(op));
  }
  // Duplicate removes of the same triple instance could invalidate the
  // batch (the overlay erases one instance per remove); dedupe.
  std::sort(b.remove.begin(), b.remove.end(),
            [](const TripleOp& a, const TripleOp& c) {
              return std::tie(a.subject, a.predicate, a.object) <
                     std::tie(c.subject, c.predicate, c.object);
            });
  b.remove.erase(std::unique(b.remove.begin(), b.remove.end(),
                             [](const TripleOp& a, const TripleOp& c) {
                               return a.subject == c.subject &&
                                      a.predicate == c.predicate &&
                                      a.object == c.object;
                             }),
                 b.remove.end());
  return b;
}

std::vector<std::vector<std::string>> DrawQueries(const Fixture& f,
                                                  Rng* rng, size_t count) {
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng->Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng->Uniform(2);
    for (size_t i = 0; i < 2 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng->Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  // Overlay-born content must be searchable too.
  queries.push_back({"livenode0x0", "livenode0y0"});
  return queries;
}

/// Queries on (base + overlay) must be byte-identical to queries on the
/// cold rebuild — across engine kinds and pooled/fresh state.
void ExpectQueryEquivalence(const SnapshotManager& manager,
                            const MirrorKb::Rebuilt& want,
                            const std::vector<std::vector<std::string>>& qs,
                            const std::vector<EngineKind>& kinds) {
  SearchOptions defaults;
  defaults.threads = 2;
  SearchEngine live_engine(defaults);
  SearchEngine cold_engine(&want.graph, &want.index, defaults);
  SearchStatePool pool;
  for (EngineKind kind : kinds) {
    for (bool pooled : {false, true}) {
      SCOPED_TRACE(std::string(EngineKindName(kind)) +
                   (pooled ? "/pooled" : "/fresh"));
      live_engine.SetStatePool(pooled ? &pool : &GlobalSearchStatePool());
      cold_engine.SetStatePool(pooled ? &pool : &GlobalSearchStatePool());
      for (const auto& kws : qs) {
        SearchOptions opts = defaults;
        opts.engine = kind;
        KbHandle kb = manager.PinHandle();
        auto live_result = live_engine.SearchKeywords(kb, kws, opts);
        auto cold_result = cold_engine.SearchKeywords(kws, opts);
        EXPECT_EQ(Canonical(live_result), Canonical(cold_result))
            << "query: " << ::testing::PrintToString(kws);
      }
    }
  }
}

TEST(LiveUpdateTest, RandomizedBatchesMatchColdRebuild) {
  Fixture f;
  Rng rng(testing::TestSeed());
  MirrorKb mirror;
  mirror.InitFromBase(f.kb.graph);
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());

  const auto queries = DrawQueries(f, &rng, 3);
  const int kBatches = 6;
  for (int i = 0; i < kBatches; ++i) {
    SCOPED_TRACE("batch " + std::to_string(i));
    UpdateBatch b = DrawBatch(&rng, mirror, i);
    ASSERT_TRUE(manager.Apply(b).ok());
    ApplyToMirror(&mirror, b);
    MirrorKb::Rebuilt want = mirror.Rebuild();
    KbHandle kb = manager.PinHandle();
    ExpectViewEqualsRebuild(kb.graph, kb.index, want);
    if (::testing::Test::HasFatalFailure()) return;
    // Cheap per-batch query check; the full 4-kind sweep runs on the final
    // state below.
    ExpectQueryEquivalence(manager, want, queries,
                           {EngineKind::kSequential, EngineKind::kCpuParallel});
  }
  MirrorKb::Rebuilt final_want = mirror.Rebuild();
  ExpectQueryEquivalence(
      manager, final_want, DrawQueries(f, &rng, 4),
      {EngineKind::kSequential, EngineKind::kCpuParallel,
       EngineKind::kCpuDynamic, EngineKind::kGpuSim});
}

TEST(LiveUpdateTest, CompactedFoldMatchesColdRebuild) {
  Fixture f;
  Rng rng(testing::TestSeed());
  MirrorKb mirror;
  mirror.InitFromBase(f.kb.graph);
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());

  for (int i = 0; i < 4; ++i) {
    UpdateBatch b = DrawBatch(&rng, mirror, i);
    ASSERT_TRUE(manager.Apply(b).ok());
    ApplyToMirror(&mirror, b);
  }
  EXPECT_EQ(manager.overlay_depth(), 4u);
  ASSERT_TRUE(manager.CompactOnce().ok());
  EXPECT_EQ(manager.overlay_depth(), 0u);
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_EQ(manager.compactions(), 1u);

  MirrorKb::Rebuilt want = mirror.Rebuild();
  KbHandle kb = manager.PinHandle();
  // The compacted state serves with a null patch: pure snapshot.
  EXPECT_EQ(kb.graph.patch(), nullptr);
  ExpectViewEqualsRebuild(kb.graph, kb.index, want);
  // The folded CSR itself (not just the view of it) must equal the rebuilt
  // one, adjacency array for adjacency array.
  const KnowledgeGraph& folded = *kb.graph.base();
  ASSERT_EQ(folded.adjacency().size(), want.graph.adjacency().size());
  for (size_t i = 0; i < folded.adjacency().size(); ++i) {
    EXPECT_EQ(folded.adjacency()[i].target, want.graph.adjacency()[i].target);
    EXPECT_EQ(folded.adjacency()[i].label, want.graph.adjacency()[i].label);
    EXPECT_EQ(folded.adjacency()[i].reverse,
              want.graph.adjacency()[i].reverse);
  }
  ExpectQueryEquivalence(manager, want, DrawQueries(f, &rng, 3),
                         {EngineKind::kSequential, EngineKind::kCpuParallel});

  // Updates keep working after the fold (rebased overlay on the new base).
  UpdateBatch b = DrawBatch(&rng, mirror, 99);
  ASSERT_TRUE(manager.Apply(b).ok());
  ApplyToMirror(&mirror, b);
  MirrorKb::Rebuilt want2 = mirror.Rebuild();
  KbHandle kb2 = manager.PinHandle();
  ExpectViewEqualsRebuild(kb2.graph, kb2.index, want2);
}

TEST(LiveUpdateTest, RejectedBatchChangesNothing) {
  Fixture f;
  MirrorKb mirror;
  mirror.InitFromBase(f.kb.graph);
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());

  UpdateBatch good;
  good.add.push_back({"atomnew1", "livepred0", "atomnew2"});
  ASSERT_TRUE(manager.Apply(good).ok());
  ApplyToMirror(&mirror, good);
  const uint64_t version = manager.version();

  // Valid adds followed by an invalid remove: the adds must not leak.
  UpdateBatch bad;
  bad.add.push_back({"atomnew3", "livepred0", "atomnew1"});
  bad.add.push_back({mirror.node_order[0], "livepred1", "atomnew3"});
  bad.remove.push_back({"no-such-node", "livepred0", "atomnew1"});
  Status st = manager.Apply(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.version(), version) << "rejected batch must not publish";
  EXPECT_EQ(manager.updates_rejected(), 1u);

  KbHandle kb = manager.PinHandle();
  EXPECT_EQ(kb.graph.FindNode("atomnew3"), kInvalidNode);
  ExpectViewEqualsRebuild(kb.graph, kb.index, mirror.Rebuild());

  // Same for an invalid text op after valid adds.
  UpdateBatch bad_text;
  bad_text.add.push_back({"atomnew4", "livepred0", "atomnew1"});
  bad_text.text.push_back({"another-missing-node", "some words"});
  ASSERT_FALSE(manager.Apply(bad_text).ok());
  EXPECT_EQ(manager.PinHandle().graph.FindNode("atomnew4"), kInvalidNode);

  // Empty batches are rejected too.
  EXPECT_FALSE(manager.Apply(UpdateBatch{}).ok());
}

TEST(LiveUpdateTest, PinnedHandleSurvivesPublishAndRetiresAfter) {
  Fixture f;
  Rng rng(testing::TestSeed());
  MirrorKb mirror;
  mirror.InitFromBase(f.kb.graph);
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());

  MirrorKb::Rebuilt want_before = mirror.Rebuild();
  KbHandle pinned = manager.PinHandle();
  const uint64_t pinned_version = pinned.version;

  // Mutate and compact twice behind the pin's back.
  for (int i = 0; i < 2; ++i) {
    UpdateBatch b = DrawBatch(&rng, mirror, i);
    ASSERT_TRUE(manager.Apply(b).ok());
    ApplyToMirror(&mirror, b);
    ASSERT_TRUE(manager.CompactOnce().ok());
  }
  EXPECT_EQ(manager.generation(), 3u);
  EXPECT_GT(manager.version(), pinned_version);

  // The pinned handle still reads the pre-mutation state, consistently.
  ExpectViewEqualsRebuild(pinned.graph, pinned.index, want_before);
  SearchOptions opts;
  opts.threads = 2;
  SearchEngine engine(opts);
  SearchEngine cold(&want_before.graph, &want_before.index, opts);
  auto qs = DrawQueries(f, &rng, 2);
  for (const auto& kws : qs) {
    EXPECT_EQ(Canonical(engine.SearchKeywords(pinned, kws, opts)),
              Canonical(cold.SearchKeywords(kws, opts)));
  }

  // Three snapshots were published (initial + 2 folds); the two stale ones
  // are still leased: the first by `pinned`, the second by nothing — it
  // retired the moment the second fold's publish dropped it.
  EXPECT_EQ(manager.snapshots_published(), 3u);
  EXPECT_EQ(manager.snapshots_retired(), 1u);
  pinned = manager.PinHandle();  // drop the last lease on snapshot #1
  EXPECT_EQ(manager.snapshots_retired(), 2u);
  EXPECT_EQ(manager.snapshots_live(), 1u);
}

TEST(LiveUpdateTest, ParseUpdateBody) {
  auto batch = server::ParseUpdateBody(
      R"({"add":[["a","p","b"],["b","q","c"]],)"
      R"("remove":[["x","p","y"]],"text":[["a","hello world"],["b",""]]})");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->add.size(), 2u);
  EXPECT_EQ(batch->add[1].predicate, "q");
  EXPECT_EQ(batch->remove.size(), 1u);
  ASSERT_EQ(batch->text.size(), 2u);
  EXPECT_EQ(batch->text[0].text, "hello world");
  EXPECT_TRUE(batch->text[1].text.empty());

  EXPECT_FALSE(server::ParseUpdateBody("not json").ok());
  EXPECT_FALSE(server::ParseUpdateBody("[]").ok());
  EXPECT_FALSE(server::ParseUpdateBody("{}").ok());  // no operations
  EXPECT_FALSE(server::ParseUpdateBody(R"({"add":[["a","b"]]})").ok());
  EXPECT_FALSE(server::ParseUpdateBody(R"({"text":[["a",1]]})").ok());
}

/// End-to-end generation/invalidation contract through the HTTP service:
/// after a publish, no query can be served a pre-publish cached answer or
/// context.
TEST(LiveUpdateTest, ServiceCacheInvalidationEndToEnd) {
  Fixture f;
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());
  SearchOptions defaults;
  defaults.threads = 2;
  server::SearchService service(&manager, defaults, /*cache_capacity=*/64,
                                /*metrics=*/nullptr,
                                /*context_cache_capacity=*/64);

  // Seed the graph with a uniquely-named cluster we can search for.
  live::UpdateBatch seed;
  seed.add.push_back({"zzqueryable", "livepred0", "zzanchor"});
  ASSERT_TRUE(manager.Apply(seed).ok());

  // Probe for a node that does not exist yet: "zzfresh" matches nothing and
  // is dropped, so the cached pre-update answer cannot mention it — making
  // a stale cache hit after the update unambiguously detectable.
  server::HttpRequest search;
  search.method = "GET";
  search.path = "/search";
  search.params["q"] = "zzfresh zzanchor";
  server::HttpResponse before = service.HandleSearch(search);
  ASSERT_EQ(before.status, 200) << before.body;
  EXPECT_NE(before.body.find("zzanchor"), std::string::npos);
  EXPECT_NE(before.body.find(R"("dropped_keywords":["zzfresh"])"),
            std::string::npos)
      << before.body;
  EXPECT_EQ(before.body.find(R"("name":"zzfresh")"), std::string::npos);
  // Same request again: served from the response cache at this version.
  server::HttpResponse repeat = service.HandleSearch(search);
  EXPECT_EQ(repeat.body, before.body);
  EXPECT_GE(service.cache().hits(), 1u);

  // Mutate: attach a new node to the cluster. No compaction yet — the
  // version bump alone must keep the stale cached answer unreachable.
  server::HttpRequest update;
  update.method = "POST";
  update.path = "/update";
  update.body =
      R"({"add":[["zzfresh","livepred0","zzqueryable"],)"
      R"(["zzfresh","livepred0","zzanchor"]]})";
  server::HttpResponse uresp = service.HandleUpdate(update);
  ASSERT_EQ(uresp.status, 200) << uresp.body;

  server::HttpResponse after = service.HandleSearch(search);
  ASSERT_EQ(after.status, 200) << after.body;
  EXPECT_NE(after.body.find(R"("name":"zzfresh")"), std::string::npos)
      << "post-update query served a pre-update answer: " << after.body;

  // Now through a compaction publish: the caches are invalidated and the
  // answer reflects the folded snapshot.
  const uint64_t invalidations_before = service.context_cache().invalidations();
  // Cache a probe for the next node before it exists, then fold it in.
  server::HttpRequest search2;
  search2.method = "GET";
  search2.path = "/search";
  search2.params["q"] = "zzpostfold zzanchor";
  server::HttpResponse probe = service.HandleSearch(search2);
  ASSERT_EQ(probe.status, 200) << probe.body;
  EXPECT_EQ(probe.body.find(R"("name":"zzpostfold")"), std::string::npos);

  server::HttpRequest update2;
  update2.method = "POST";
  update2.path = "/update";
  update2.params["compact"] = "1";
  update2.body = R"({"add":[["zzpostfold","livepred0","zzanchor"]]})";
  server::HttpResponse uresp2 = service.HandleUpdate(update2);
  ASSERT_EQ(uresp2.status, 200) << uresp2.body;
  EXPECT_EQ(service.context_cache().invalidations(),
            invalidations_before + 1);
  EXPECT_EQ(service.cache().size(), 0u) << "publish must clear the cache";

  server::HttpResponse folded = service.HandleSearch(search2);
  ASSERT_EQ(folded.status, 200) << folded.body;
  EXPECT_NE(folded.body.find(R"("name":"zzpostfold")"), std::string::npos)
      << "post-publish query served a pre-publish answer: " << folded.body;

  // Rejected updates surface as errors and change nothing.
  server::HttpRequest bad;
  bad.method = "POST";
  bad.path = "/update";
  bad.body = R"({"remove":[["ghost","livepred0","zzanchor"]]})";
  EXPECT_EQ(service.HandleUpdate(bad).status, 404);

  // /snapshot reports the lifecycle.
  server::HttpRequest snap;
  snap.method = "GET";
  snap.path = "/snapshot";
  server::HttpResponse sresp = service.HandleSnapshot(snap);
  ASSERT_EQ(sresp.status, 200);
  EXPECT_NE(sresp.body.find("\"generation\":2"), std::string::npos)
      << sresp.body;
  EXPECT_NE(sresp.body.find("\"compaction_state\":\"idle\""),
            std::string::npos);
}

TEST(LiveUpdateTest, CompactorThreadFoldsOnThreshold) {
  Fixture f;
  SnapshotManager::Config cfg = ManagerConfig();
  cfg.compact_threshold_batches = 2;
  SnapshotManager manager(f.kb.graph, f.index, cfg);
  live::Compactor compactor(&manager);
  compactor.Start();

  UpdateBatch b1;
  b1.add.push_back({"cthr1", "livepred0", "cthr2"});
  ASSERT_TRUE(manager.Apply(b1).ok());
  UpdateBatch b2;
  b2.add.push_back({"cthr3", "livepred0", "cthr1"});
  ASSERT_TRUE(manager.Apply(b2).ok());  // depth hits 2: trigger fires

  // The fold runs on the compactor thread; wait for the publish.
  for (int i = 0; i < 2000 && manager.generation() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(manager.generation(), 2u);
  EXPECT_EQ(manager.overlay_depth(), 0u);
  KbHandle kb = manager.PinHandle();
  EXPECT_NE(kb.graph.FindNode("cthr3"), kInvalidNode);
  compactor.Stop();
}

}  // namespace
}  // namespace wikisearch
