// The QueryScheduler's three policies in isolation: exact admission
// accounting (shed, in-flight, high-water mark), single-flight collapse of
// identical in-flight queries, and the shared intra-query thread budget.
#include "server/query_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace wikisearch::server {
namespace {

SearchResult TaggedResult(int tag) {
  SearchResult r;
  r.stats.levels = tag;
  return r;
}

/// A search function whose entry/exit the test controls: workers block at
/// the "engine" until the test releases them, so concurrency windows are
/// deterministic rather than timing-dependent.
class Gate {
 public:
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }
  void ArriveAndWait() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++arrived_;
      cv_.notify_all();
    }
    Wait();
  }
  void AwaitArrivals(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return arrived_ >= n; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int arrived_ = 0;
};

TEST(QuerySchedulerTest, SingleFlightCollapsesIdenticalInFlightQueries) {
  QueryScheduler::Options opts;
  opts.max_running = 2;
  QueryScheduler sched(opts);

  Gate gate;
  std::atomic<int> executions{0};
  constexpr int kThreads = 8;
  std::vector<QueryScheduler::Outcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      outcomes[i] = sched.Run("hot-query", [&](int) {
        executions.fetch_add(1);
        gate.ArriveAndWait();
        return Result<SearchResult>(TaggedResult(42));
      });
    });
  }
  // Exactly one leader reaches the engine; everyone else joins its flight.
  // Hold the leader at the gate until all eight are admitted — otherwise a
  // slow-spawning thread could arrive after the flight finished and start
  // a fresh one.
  gate.AwaitArrivals(1);
  while (sched.in_flight() < static_cast<size_t>(kThreads)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.Release();
  for (auto& t : threads) t.join();

  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(sched.executed_total(), 1u);
  EXPECT_EQ(sched.shared_total(), static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(sched.admitted_total(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(sched.in_flight(), 0u);
  int ran = 0, shared = 0;
  const Result<SearchResult>* leader_result = nullptr;
  for (const auto& out : outcomes) {
    ASSERT_NE(out.result, nullptr);
    ASSERT_TRUE(out.result->ok());
    EXPECT_EQ((*out.result)->stats.levels, 42);
    if (out.kind == QueryScheduler::Outcome::Kind::kRan) {
      ++ran;
      leader_result = out.result.get();
    } else if (out.kind == QueryScheduler::Outcome::Kind::kShared) {
      ++shared;
    }
  }
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(shared, kThreads - 1);
  // Joiners share the leader's result object, not a copy.
  for (const auto& out : outcomes) {
    EXPECT_EQ(out.result.get(), leader_result);
  }
}

TEST(QuerySchedulerTest, DistinctKeysNeverShare) {
  QueryScheduler::Options opts;
  opts.max_running = 4;
  QueryScheduler sched(opts);
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&, i] {
      auto out = sched.Run("q" + std::to_string(i), [&](int) {
        return Result<SearchResult>(TaggedResult(i));
      });
      ASSERT_EQ(out.kind, QueryScheduler::Outcome::Kind::kRan);
      EXPECT_EQ((*out.result)->stats.levels, i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sched.executed_total(), 6u);
  EXPECT_EQ(sched.shared_total(), 0u);
}

TEST(QuerySchedulerTest, EmptyKeyOptsOutOfSingleFlight) {
  QueryScheduler::Options opts;
  opts.max_running = 8;
  QueryScheduler sched(opts);
  Gate gate;
  std::atomic<int> executions{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto out = sched.Run(std::string(), [&](int) {
        executions.fetch_add(1);
        gate.ArriveAndWait();
        return Result<SearchResult>(TaggedResult(0));
      });
      EXPECT_EQ(out.kind, QueryScheduler::Outcome::Kind::kRan);
    });
  }
  gate.AwaitArrivals(kThreads);  // all four run the engine simultaneously
  gate.Release();
  for (auto& t : threads) t.join();
  EXPECT_EQ(executions.load(), kThreads);
  EXPECT_EQ(sched.shared_total(), 0u);
}

TEST(QuerySchedulerTest, QueueDepthShedsExactlyAndHwmNeverExceedsDepth) {
  QueryScheduler::Options opts;
  opts.max_running = 1;
  opts.queue_depth = 4;
  opts.single_flight = false;
  QueryScheduler sched(opts);

  Gate gate;
  constexpr int kThreads = 16;
  std::atomic<int> ran{0}, shed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto out = sched.Run("q" + std::to_string(i), [&](int) {
        gate.ArriveAndWait();
        return Result<SearchResult>(TaggedResult(i));
      });
      if (out.kind == QueryScheduler::Outcome::Kind::kShed) {
        EXPECT_EQ(out.result, nullptr);
        shed.fetch_add(1);
      } else {
        ran.fetch_add(1);
      }
    });
  }
  gate.AwaitArrivals(1);
  gate.Release();
  for (auto& t : threads) t.join();

  // Exact reconciliation under any interleaving: every request either ran
  // or was shed, the counters agree with the caller tallies, admitted
  // never exceeded the depth, and the gate drains back to zero.
  EXPECT_EQ(ran.load() + shed.load(), kThreads);
  EXPECT_GE(ran.load(), 1);
  EXPECT_EQ(sched.shed_total(), static_cast<uint64_t>(shed.load()));
  EXPECT_EQ(sched.executed_total(), static_cast<uint64_t>(ran.load()));
  EXPECT_EQ(sched.admitted_total(), static_cast<uint64_t>(ran.load()));
  EXPECT_LE(sched.high_water_mark(), 4u);
  EXPECT_GE(sched.high_water_mark(), 1u);
  EXPECT_EQ(sched.in_flight(), 0u);
  EXPECT_EQ(sched.running(), 0u);
}

TEST(QuerySchedulerTest, DepthZeroAdmitsEverything) {
  QueryScheduler::Options opts;
  opts.max_running = 2;
  opts.queue_depth = 0;
  QueryScheduler sched(opts);
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 32; ++i) {
    threads.emplace_back([&, i] {
      auto out = sched.Run("q" + std::to_string(i), [&](int) {
        return Result<SearchResult>(TaggedResult(i));
      });
      if (out.kind != QueryScheduler::Outcome::Kind::kShed) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 32);
  EXPECT_EQ(sched.shed_total(), 0u);
  EXPECT_EQ(sched.admitted_total(), 32u);
  EXPECT_LE(sched.high_water_mark(), 32u);
}

TEST(QuerySchedulerTest, ThreadGrantDividesBudgetAmongRunningQueries) {
  QueryScheduler::Options opts;
  opts.max_running = 4;
  opts.total_threads = 8;
  opts.max_threads_per_query = 8;
  opts.single_flight = false;
  QueryScheduler sched(opts);

  // A lone query gets the full budget.
  auto solo = sched.Run("solo", [&](int threads) {
    EXPECT_EQ(threads, 8);
    return Result<SearchResult>(TaggedResult(0));
  });
  EXPECT_EQ(solo.kind, QueryScheduler::Outcome::Kind::kRan);

  // With four running simultaneously, each is granted 8/4 = 2; the grant
  // never drops below 1 and is monotone in the number of running queries.
  Gate gate;
  std::mutex grants_mu;
  std::vector<int> grants;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      sched.Run("q" + std::to_string(i), [&](int t) {
        {
          std::lock_guard<std::mutex> lock(grants_mu);
          grants.push_back(t);
        }
        gate.ArriveAndWait();
        return Result<SearchResult>(TaggedResult(i));
      });
    });
  }
  gate.AwaitArrivals(4);
  gate.Release();
  for (auto& t : threads) t.join();
  ASSERT_EQ(grants.size(), 4u);
  for (int g : grants) {
    EXPECT_GE(g, 2);  // 8 / 4 at full occupancy
    EXPECT_LE(g, 8);  // a query admitted while others drain gets more
  }
}

TEST(QuerySchedulerTest, PerQueryCapBoundsTheGrant) {
  QueryScheduler::Options opts;
  opts.max_running = 2;
  opts.total_threads = 16;
  opts.max_threads_per_query = 3;
  QueryScheduler sched(opts);
  auto out = sched.Run("q", [&](int threads) {
    EXPECT_EQ(threads, 3);
    return Result<SearchResult>(TaggedResult(0));
  });
  EXPECT_EQ(out.kind, QueryScheduler::Outcome::Kind::kRan);
}

TEST(QuerySchedulerTest, MaxRunningBoundsSimultaneousExecutions) {
  QueryScheduler::Options opts;
  opts.max_running = 2;
  opts.single_flight = false;
  QueryScheduler sched(opts);

  Gate gate;
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      sched.Run("q" + std::to_string(i), [&](int) {
        int now = inside.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        inside.fetch_sub(1);
        return Result<SearchResult>(TaggedResult(i));
      });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(sched.executed_total(), 8u);
  EXPECT_EQ(sched.running(), 0u);
}

TEST(QuerySchedulerTest, SingleFlightDoesNotReplayFinishedFlights) {
  QueryScheduler sched;
  std::atomic<int> executions{0};
  for (int i = 0; i < 3; ++i) {
    auto out = sched.Run("same-key", [&](int) {
      executions.fetch_add(1);
      return Result<SearchResult>(TaggedResult(i));
    });
    EXPECT_EQ(out.kind, QueryScheduler::Outcome::Kind::kRan);
  }
  // Sequential same-key queries each execute: dedup applies to in-flight
  // work only; replaying finished results is the response cache's job.
  EXPECT_EQ(executions.load(), 3);
  EXPECT_EQ(sched.shared_total(), 0u);
}

TEST(QuerySchedulerTest, RuntimeKnobsTakeEffect) {
  QueryScheduler sched;
  sched.set_queue_depth(1);
  EXPECT_EQ(sched.queue_depth(), 1u);
  sched.set_max_running(3);
  EXPECT_EQ(sched.max_running(), 3u);
  sched.set_thread_budget(6, 2);
  auto out = sched.Run("q", [&](int threads) {
    EXPECT_EQ(threads, 2);  // min(6 / 1 running, cap 2)
    return Result<SearchResult>(TaggedResult(0));
  });
  EXPECT_EQ(out.kind, QueryScheduler::Outcome::Kind::kRan);

  sched.set_single_flight(false);
  sched.set_queue_depth(0);  // re-admit everything for the phase below
  Gate gate;
  std::atomic<int> executions{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {
      sched.Run("dup", [&](int) {
        executions.fetch_add(1);
        gate.ArriveAndWait();
        return Result<SearchResult>(TaggedResult(0));
      });
    });
  }
  gate.AwaitArrivals(2);  // both run: single-flight is off
  gate.Release();
  for (auto& t : threads) t.join();
  EXPECT_EQ(executions.load(), 2);
}

}  // namespace
}  // namespace wikisearch::server
