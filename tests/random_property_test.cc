// Randomized differential/property tests: weird topologies (self-loops,
// multi-edges, stars, cliques, disconnected pieces), random weights, random
// keyword sets — all four engines must agree, answers must satisfy the
// structural invariants, and stage-1 hitting levels must respect the
// independent fixpoint bound.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "graph/graph_algos.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace wikisearch {
namespace {

/// Random graph with intentionally nasty features.
KnowledgeGraph RandomNastyGraph(Rng& rng, size_t n) {
  GraphBuilder b;
  for (size_t i = 0; i < n; ++i) {
    // Names with shared tokens so the inverted index creates overlapping
    // posting lists: "tok<i%7> node<i>".
    b.AddNode("tok" + std::to_string(i % 7) + " node" + std::to_string(i));
  }
  size_t labels = 1 + rng.Uniform(5);
  std::vector<LabelId> lids;
  for (size_t l = 0; l < labels; ++l) {
    lids.push_back(b.AddLabel("rel" + std::to_string(l)));
  }
  size_t edges = n + rng.Uniform(3 * n);
  for (size_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    // Allow self-loops and duplicates deliberately.
    auto st = b.AddEdge(u, v, lids[rng.Uniform(lids.size())]);
    EXPECT_TRUE(st.ok());
  }
  return std::move(b).Build();
}

class RandomEngineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomEngineAgreementTest, EnginesAgreeAndInvariantsHold) {
  Rng rng(GetParam() * 7919 + 13);
  size_t n = 16 + rng.Uniform(64);
  KnowledgeGraph g = RandomNastyGraph(rng, n);
  std::vector<double> w(g.num_nodes());
  for (auto& x : w) x = rng.UniformDouble();
  ASSERT_TRUE(g.SetNodeWeights(std::move(w)).ok());
  g.SetAverageDistance(1.5 + rng.UniformDouble() * 3.0, 0.5);
  InvertedIndex index = InvertedIndex::Build(g);

  // Query: 2-4 of the shared tokens.
  std::vector<std::string> kws;
  size_t q = 2 + rng.Uniform(3);
  for (size_t i = 0; i < q; ++i) {
    kws.push_back("tok" + std::to_string(rng.Uniform(7)));
  }
  std::sort(kws.begin(), kws.end());
  kws.erase(std::unique(kws.begin(), kws.end()), kws.end());

  SearchOptions base;
  base.top_k = 1 + static_cast<int>(rng.Uniform(10));
  base.alpha = 0.05 + rng.UniformDouble() * 0.6;
  base.engine = EngineKind::kSequential;
  SearchEngine engine(&g, &index, base);
  Result<SearchResult> ref = engine.SearchKeywords(kws, base);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (const AnswerGraph& a : ref->answers) {
    testing::CheckAnswerInvariants(g, a, ref->keywords.size());
  }

  for (EngineKind kind : {EngineKind::kCpuParallel, EngineKind::kGpuSim,
                          EngineKind::kCpuDynamic}) {
    SearchOptions opts = base;
    opts.engine = kind;
    opts.threads = 1 + static_cast<int>(rng.Uniform(4));
    Result<SearchResult> got = engine.SearchKeywords(kws, opts);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->answers.size(), ref->answers.size())
        << EngineKindName(kind);
    for (size_t i = 0; i < ref->answers.size(); ++i) {
      EXPECT_EQ(got->answers[i].central, ref->answers[i].central);
      EXPECT_EQ(got->answers[i].nodes, ref->answers[i].nodes);
      EXPECT_EQ(got->answers[i].depth, ref->answers[i].depth);
      EXPECT_NEAR(got->answers[i].score, ref->answers[i].score, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEngineAgreementTest,
                         ::testing::Range<uint64_t>(1, 31));

class RandomIoRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomIoRoundTripTest, GraphAndIndexSurviveDisk) {
  Rng rng(GetParam() * 104729 + 7);
  KnowledgeGraph g = RandomNastyGraph(rng, 12 + rng.Uniform(30));
  AttachNodeWeights(&g);
  g.SetAverageDistance(2.0, 0.4);
  std::string gpath = ::testing::TempDir() + "/ws_rand_" +
                      std::to_string(GetParam()) + ".wskg";
  ASSERT_TRUE(SaveGraph(g, gpath).ok());
  auto loaded = LoadGraph(gpath);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_adjacency_entries(), g.num_adjacency_entries());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded->NodeName(v), g.NodeName(v));
    EXPECT_EQ(loaded->Degree(v), g.Degree(v));
    EXPECT_DOUBLE_EQ(loaded->NodeWeight(v), g.NodeWeight(v));
  }
  std::remove(gpath.c_str());

  InvertedIndex index = InvertedIndex::Build(g);
  std::string ipath = ::testing::TempDir() + "/ws_rand_" +
                      std::to_string(GetParam()) + ".wsix";
  ASSERT_TRUE(index.Save(ipath).ok());
  auto loaded_index = InvertedIndex::Load(ipath);
  ASSERT_TRUE(loaded_index.ok()) << loaded_index.status().ToString();
  EXPECT_EQ(loaded_index->num_terms(), index.num_terms());
  EXPECT_EQ(loaded_index->num_postings(), index.num_postings());
  for (int t = 0; t < 7; ++t) {
    std::string term = "tok" + std::to_string(t);
    auto a = index.Lookup(term);
    auto b = loaded_index->Lookup(term);
    ASSERT_EQ(a.size(), b.size()) << term;
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(ipath.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIoRoundTripTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(IndexPersistenceTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/ws_garbage.wsix";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(InvertedIndex::Load(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wikisearch
