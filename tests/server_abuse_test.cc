// Abuse and misbehaving-client battery for the reactor server (DESIGN.md
// §13): slowloris trickles get reaped at the idle timeout, half-closed
// clients still receive their pending responses, clients that vanish
// mid-engine-run cost a discarded result (never a dead-fd write or a
// leaked pooled buffer), the connection cap sheds inline with 503, and a
// pipeline flood is throttled, not buffered without bound. Every assertion
// that has a /metrics counterpart is reconciled against a live scrape.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "core/node_weight.h"
#include "graph/distance_sampler.h"
#include "obs/metrics.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/search_service.h"

namespace wikisearch::server {
namespace {

/// Polls `cond` until true or ~`ms` elapsed (generous under sanitizers).
bool WaitFor(const std::function<bool()>& cond, int ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

TEST(ServerAbuseTest, SlowlorisIsReapedAtIdleTimeout) {
  HttpServer server;
  server.SetSocketTimeoutMs(100);
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  HttpConnection sl;
  ASSERT_TRUE(sl.Connect(server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 1; }));
  // Trickle header bytes forever, never completing the request. Each write
  // lands (TCP accepts it) but partial reads never refresh the idle clock,
  // so the reaper sees a connection idle since accept.
  const std::string head = "GET /ping HTTP/1.1\r\nX-Slow: ";
  for (size_t i = 0; i < head.size(); ++i) {
    if (!sl.SendRaw(std::string_view(&head[i], 1)).ok()) break;  // reaped
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  // The server hangs up without sending anything: EOF, not a response.
  EXPECT_FALSE(sl.ReadResponse().ok());
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(server.idle_reaped(), 1u);
  EXPECT_EQ(server.discarded_responses(), 0u);

  // The reap freed real capacity: a fresh, well-behaved client is served.
  auto ok = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  server.Stop();
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);
}

TEST(ServerAbuseTest, IdleKeepAliveConnectionIsAlsoReaped) {
  // Same reaper, politer peer: a keep-alive connection that completed its
  // requests and then goes silent is reclaimed too.
  HttpServer server;
  server.SetSocketTimeoutMs(100);
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(server.port()).ok());
  auto resp = conn.Get("/ping");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_FALSE(conn.ReadResponse().ok());  // blocks until the reap, then EOF
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(server.idle_reaped(), 1u);
  server.Stop();
}

TEST(ServerAbuseTest, HalfCloseMidResponseStillGetsTheResponse) {
  HttpServer server;
  server.Route("/slow", [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return HttpResponse::Text(200, "late but here\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(server.port()).ok());
  ASSERT_TRUE(conn.SendGet("/slow").ok());
  // FIN while the handler is still running: the server must treat this as
  // "no more requests", not "client gone" — the response is still owed.
  conn.ShutdownWrite();
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "late but here\n");
  // Response delivered, read side drained: now the server closes.
  EXPECT_FALSE(conn.ReadResponse().ok());
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return server.requests_served() == 1u; }));
  EXPECT_EQ(server.discarded_responses(), 0u);
  server.Stop();
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);
}

TEST(ServerAbuseTest, ClientAbortMidHandlerDiscardsTheResult) {
  HttpServer server;
  std::atomic<int> handler_runs{0};
  server.Route("/work", [&](const HttpRequest&) {
    handler_runs.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return HttpResponse::Text(200, "nobody is listening\n");
  });
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(server.port()).ok());
  ASSERT_TRUE(conn.SendGet("/work").ok());
  ASSERT_TRUE(WaitFor([&] { return handler_runs.load() == 1; }));
  // RST while the engine runs. The reactor drops the connection; when the
  // handler completes, its response has nowhere to go and is discarded —
  // never written to a dead fd, its pooled buffer never leaked.
  conn.Abort();
  EXPECT_TRUE(WaitFor([&] { return server.discarded_responses() == 1; }));
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  EXPECT_EQ(server.requests_served(), 0u);
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);

  // The server shrugs it off: next client gets served normally.
  auto ok = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  server.Stop();
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);
  EXPECT_EQ(server.live_worker_threads(), 0u);
}

TEST(ServerAbuseTest, ConnectionCapSheds503Inline) {
  HttpServer server;
  server.SetMaxConnections(1);
  server.Route("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong\n");
  });
  ASSERT_TRUE(server.Start(0).ok());

  // First connection takes the only slot and keeps it (keep-alive).
  HttpConnection holder;
  ASSERT_TRUE(holder.Connect(server.port()).ok());
  auto held = holder.Get("/ping");
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(held->status, 200);
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 1; }));

  // Over-cap accepts are answered 503 straight from the reactor — no
  // connection state, no handler dispatch, then the socket is closed.
  for (int i = 0; i < 3; ++i) {
    HttpConnection shed;
    ASSERT_TRUE(shed.Connect(server.port()).ok());
    auto resp = shed.ReadResponse();  // 503 arrives unprompted
    ASSERT_TRUE(resp.ok()) << i;
    EXPECT_EQ(resp->status, 503);
    EXPECT_EQ(resp->headers.at("retry-after"), "1");
    EXPECT_EQ(resp->headers.at("connection"), "close");
    EXPECT_FALSE(shed.ReadResponse().ok());  // EOF
  }
  EXPECT_EQ(server.rejected_connections(), 3u);
  EXPECT_LE(server.active_connections(), 1u);

  // Releasing the slot restores service.
  holder.Close();
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  auto ok = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  server.Stop();
}

TEST(ServerAbuseTest, PipelineFloodIsThrottledNotBufferedUnbounded) {
  HttpServer server;
  server.SetMaxPipeline(4);
  server.Route("/echo", [](const HttpRequest& req) {
    return HttpResponse::Text(200, req.Param("i"));
  });
  ASSERT_TRUE(server.Start(0).ok());

  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(server.port()).ok());
  constexpr int kBurst = 24;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += "GET /echo?i=" + std::to_string(i) +
             " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  ASSERT_TRUE(conn.SendRaw(burst).ok());
  // Parse-ahead stops at 4 unanswered requests; as we (the flooder) read
  // responses, the reactor resumes parsing. Everything is answered, in
  // order, with bounded parse-ahead at every instant.
  for (int i = 0; i < kBurst; ++i) {
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "i=" << i << ": " << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, std::to_string(i));
  }
  // The counter lands on the reactor thread a beat after we read byte N.
  EXPECT_TRUE(WaitFor([&] {
    return server.requests_served() == static_cast<uint64_t>(kBurst);
  })) << server.requests_served();
  server.Stop();
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);
}

// ----------------------- /metrics reconciliation -----------------------------

TEST(ServerAbuseTest, MetricsScrapeReconcilesAbuseCountersExactly) {
  GraphBuilder b;
  b.AddTriple("xml toolkit", "part of", "data tools");
  b.AddTriple("rdf engine", "part of", "data tools");
  KnowledgeGraph graph = std::move(b).Build();
  AttachNodeWeights(&graph);
  AttachAverageDistance(&graph, 100, 3);
  InvertedIndex index = InvertedIndex::Build(graph);

  // Stall the engine so an abort lands mid-run (the sanctioned hook).
  SearchOptions defaults;
  defaults.engine = EngineKind::kSequential;
  defaults.fault_injection = [](const char* point) {
    if (std::string_view(point) == "bottomup:level") {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  SearchService service(&graph, &index, defaults);
  HttpServer server;
  service.RegisterRoutes(&server);
  ASSERT_TRUE(server.Start(0).ok());

  // 1. A keep-alive client: 3 requests on one socket → 2 reuses.
  {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()).ok());
    for (int i = 0; i < 3; ++i) {
      auto resp = conn.Get("/healthz");
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->status, 200);
    }
  }
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));

  // 2. A client that aborts mid-engine-run → 1 discarded response.
  {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(server.port()).ok());
    ASSERT_TRUE(conn.SendGet("/search?q=xml+rdf").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    conn.Abort();
  }
  ASSERT_TRUE(WaitFor([&] { return server.discarded_responses() == 1; }));
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));

  // 3. Scrape. The scraping connection is itself the single open
  // connection at bridge time, and every abuse counter above must appear
  // in the exposition with exactly the value the accessors report.
  auto metrics = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  const std::string& out = metrics->body;
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_open_connections"), 1.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_keepalive_reuse"), 2.0);
  EXPECT_EQ(server.keepalive_reuse(), 2u);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_discarded_responses_total"),
            1.0);
  EXPECT_EQ(server.discarded_responses(), 1u);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_idle_reaped_total"), 0.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_accepted_connections_total"),
            static_cast<double>(server.accepted_connections()));
  EXPECT_EQ(server.accepted_connections(), 3u);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_buffers_outstanding"), 0.0);
  EXPECT_EQ(obs::FindMetricValue(out, "ws_server_live_worker_threads"),
            static_cast<double>(server.live_worker_threads()));

  server.Stop();
  EXPECT_EQ(server.buffer_pool().outstanding(), 0u);
  EXPECT_EQ(server.live_worker_threads(), 0u);
  EXPECT_EQ(server.active_connections(), 0u);
}

}  // namespace
}  // namespace wikisearch::server
