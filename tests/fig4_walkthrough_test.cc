// A Fig. 1 / Fig. 4-style walkthrough: the query-language example with
// per-node activation levels staging the expansion, ending in a Central
// Graph with multiple hitting paths for one keyword (two disjoint XML
// paths) and multiple keyword nodes for another (two RDF sources) — the
// expressiveness the paper's introduction claims over tree answers.
//
// Layout (activations in parentheses; A=2, alpha=0.5):
//
//   v9 XML(1) --- v6(0) --- v2 center(0) --- v1 SQL(0)
//        \------- v7(0) ------/    |
//   v4 RDF(0) --\                  |
//                v3(2) ------------/
//   v5 RDF(0) --/
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/extraction.h"
#include "core/top_down.h"
#include "test_util.h"

namespace wikisearch {
namespace {

struct Walkthrough {
  Walkthrough() {
    GraphBuilder b;
    v9 = b.AddNode("xquery xml");
    v6 = b.AddNode("xpath two");
    v7 = b.AddNode("xpath three");
    v2 = b.AddNode("query language");
    v1 = b.AddNode("sql standard");
    v4 = b.AddNode("sparql rdf");
    v5 = b.AddNode("rdf query spec");
    v3 = b.AddNode("semantic web stack");
    LabelId l = b.AddLabel("related");
    auto add = [&](NodeId a, NodeId c) {
      WS_CHECK(b.AddEdge(a, c, l).ok());
    };
    add(v9, v6);
    add(v9, v7);
    add(v6, v2);
    add(v7, v2);
    add(v1, v2);
    add(v4, v3);
    add(v5, v3);
    add(v3, v2);
    graph = std::move(b).Build();
    // Weights chosen so that with A=2, alpha=0.5 the activations are:
    // a(v9)=1 (w=0.25), a(v3)=2 (w=0.5), everything else 0.
    std::vector<double> w(graph.num_nodes(), 0.0);
    w[v9] = 0.25;
    w[v3] = 0.5;
    WS_CHECK(graph.SetNodeWeights(w).ok());
  }
  KnowledgeGraph graph;
  NodeId v1, v2, v3, v4, v5, v6, v7, v9;
};

TEST(Fig4WalkthroughTest, StagedExpansionAndMultiPathAnswer) {
  Walkthrough wt;
  std::vector<std::vector<NodeId>> groups = {
      {wt.v9},         // xml
      {wt.v4, wt.v5},  // rdf
      {wt.v1},         // sql
  };
  QueryContext ctx(wt.graph, {}, groups, ActivationMap(2.0, 0.5), 20);
  SearchOptions opts;
  opts.top_k = 1;
  ThreadPool pool(1);
  SearchState state(wt.graph.num_nodes(), 3);
  PhaseTimings timings;
  BottomUpSearch(ctx, opts, &pool, &state, &timings, false);

  // Staging: v9 waits one level (a=1); v3 cannot accept B_rdf before
  // level 2; the center is hit by SQL at 1, XML and RDF at 3.
  EXPECT_EQ(state.Hit(wt.v2, 2), 1);  // sql
  EXPECT_EQ(state.Hit(wt.v6, 0), 2);  // xml via delayed v9
  EXPECT_EQ(state.Hit(wt.v7, 0), 2);
  EXPECT_EQ(state.Hit(wt.v3, 1), 2);  // rdf blocked until a(v3)=2
  EXPECT_EQ(state.Hit(wt.v2, 0), 3);
  EXPECT_EQ(state.Hit(wt.v2, 1), 3);

  ASSERT_GE(state.centrals().size(), 1u);
  EXPECT_EQ(state.centrals()[0].node, wt.v2);
  EXPECT_EQ(state.centrals()[0].depth, 3);

  // Extraction: both XML paths (via v6 and v7) and both RDF sources.
  StateHitLevels hits(state);
  ExtractedGraph eg = ExtractCentralGraph(ctx, hits, state.centrals()[0]);
  using Edge = std::pair<NodeId, NodeId>;
  // (DAG edge lists are sorted by node id; v9=0, v6=1, v7=2, v2=3, ...)
  EXPECT_EQ(eg.dag[0],
            (std::vector<Edge>{{wt.v9, wt.v6}, {wt.v9, wt.v7},
                               {wt.v6, wt.v2}, {wt.v7, wt.v2}}));
  EXPECT_EQ(eg.dag[1], (std::vector<Edge>{{wt.v4, wt.v3},
                                          {wt.v5, wt.v3},
                                          {wt.v3, wt.v2}}));
  EXPECT_EQ(eg.dag[2], (std::vector<Edge>{{wt.v1, wt.v2}}));

  // Final answer: one graph-shaped result carrying every path — the
  // information the paper says would take several tree answers to convey.
  auto mask = [&state](NodeId v) { return state.KeywordMask(v); };
  auto answers = TopDownProcess(ctx, opts, &pool, hits, state.centrals(),
                                mask, &timings);
  ASSERT_EQ(answers.size(), 1u);
  const AnswerGraph& a = answers[0];
  EXPECT_EQ(a.central, wt.v2);
  EXPECT_EQ(a.nodes, (std::vector<NodeId>{wt.v9, wt.v6, wt.v7, wt.v2, wt.v1,
                                          wt.v4, wt.v5, wt.v3}));
  EXPECT_EQ(a.keyword_nodes[1], (std::vector<NodeId>{wt.v4, wt.v5}));
  EXPECT_EQ(a.edges.size(), 8u);  // all eight KB edges participate
  testing::CheckAnswerInvariants(wt.graph, a, 3);
}

}  // namespace
}  // namespace wikisearch
