// Compaction-under-load suite (DESIGN.md §10): queries running concurrently
// with repeated compact/publish cycles must only ever observe fully
// consistent snapshots — no torn reads, no partially applied batches, no
// blocking on the publish — and the subsystem's counters must reconcile
// with /metrics exactly. Fault hooks pin states at the overlay-apply and
// publish boundaries to prove atomicity at exactly those points. Runs under
// the tsan/asan presets, where a torn publish shows up as a data race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/node_weight.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "live/compactor.h"
#include "live/snapshot_manager.h"
#include "server/search_service.h"
#include "test_util.h"

namespace wikisearch {
namespace {

using live::Compactor;
using live::SnapshotManager;
using live::UpdateBatch;

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 300;
    cfg.num_summary_nodes = 3;
    cfg.num_topic_nodes = 6;
    cfg.num_communities = 4;
    cfg.vocab_size = 500;
    cfg.seed = 311;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 2000, 7);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

SnapshotManager::Config ManagerConfig(size_t threshold = 0) {
  SnapshotManager::Config cfg;
  cfg.distance_pairs = 2000;
  cfg.distance_seed = 7;
  cfg.compact_threshold_batches = threshold;
  return cfg;
}

std::string CanonicalAnswers(const Result<SearchResult>& r) {
  std::ostringstream out;
  if (!r.ok()) {
    out << "error:" << r.status().ToString();
    return out.str();
  }
  for (const AnswerGraph& a : r->answers) {
    out << a.central << ':' << a.depth << ':' << a.score << ';';
    for (NodeId v : a.nodes) out << v << ',';
    out << '|';
  }
  return out.str();
}

/// Every pinned state must be internally consistent, whatever instant it
/// was pinned at: counters agree with the adjacency they describe, every
/// edge's endpoints and labels are in range, weights cover every node.
void CheckHandleConsistency(const KbHandle& kb) {
  const size_t n = kb.graph.num_nodes();
  ASSERT_EQ(kb.graph.node_weights().size(), n);
  size_t entries = 0;
  size_t forward = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const AdjEntry& e : kb.graph.Neighbors(v)) {
      ASSERT_LT(e.target, n) << "edge target out of range at node " << v;
      ASSERT_LT(static_cast<size_t>(e.label), kb.graph.num_labels());
      ++entries;
      if (e.reverse == 0) ++forward;
    }
  }
  // A torn state (adjacency from one version, counters from another) fails
  // here: the counts are stored in the same patch the lists come from.
  EXPECT_EQ(entries, kb.graph.num_adjacency_entries());
  EXPECT_EQ(forward, kb.graph.num_triples());
  EXPECT_EQ(entries, 2 * forward) << "bi-directed CSR invariant";
  EXPECT_GT(kb.graph.average_distance(), 0.0);
}

TEST(LiveCompactionTest, ConcurrentSearchersNeverSeeTornState) {
  Fixture f;
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig(2));
  Compactor compactor(&manager, Compactor::Options{/*interval_ms=*/2.0});
  compactor.Start();

  SearchOptions defaults;
  defaults.threads = 1;
  defaults.engine = EngineKind::kSequential;
  SearchEngine engine(defaults);

  // Query terms that exist in the base KB.
  std::vector<std::string> kws;
  for (const auto& terms : f.kb.meta.community_terms) {
    for (const auto& t : terms) {
      if (!f.index.Lookup(t).empty() && kws.size() < 2) kws.push_back(t);
    }
  }
  ASSERT_EQ(kws.size(), 2u);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto searcher = [&] {
    uint64_t last_version = 0;
    while (!stop.load(std::memory_order_acquire)) {
      KbHandle kb = manager.PinHandle();
      // Versions are monotonic: a reader can never be handed an older
      // state than one it already saw.
      if (kb.version < last_version) {
        failures.fetch_add(1);
        return;
      }
      last_version = kb.version;
      CheckHandleConsistency(kb);
      if (::testing::Test::HasFailure()) return;
      // The same pinned handle must answer identically twice, no matter
      // how many publishes happen in between.
      auto first = engine.SearchKeywords(kb, kws, defaults);
      auto second = engine.SearchKeywords(kb, kws, defaults);
      if (CanonicalAnswers(first) != CanonicalAnswers(second)) {
        failures.fetch_add(1);
        return;
      }
    }
  };
  std::vector<std::thread> searchers;
  for (int i = 0; i < 2; ++i) searchers.emplace_back(searcher);

  // Mutate: chains hanging off existing nodes, every batch valid. The
  // threshold (2) keeps the compactor folding continuously underneath.
  const int kBatches = 14;
  for (int i = 0; i < kBatches; ++i) {
    UpdateBatch b;
    std::string fresh = "loadnode" + std::to_string(i);
    b.add.push_back({fresh, "loadpred", f.kb.graph.NodeName(
                                            static_cast<NodeId>(i % 50))});
    if (i > 0) {
      b.add.push_back({fresh, "loadpred", "loadnode" + std::to_string(i - 1)});
    }
    ASSERT_TRUE(manager.Apply(b).ok());
  }
  // One final explicit fold so the tail overlay is folded too.
  ASSERT_TRUE(manager.CompactOnce().ok());

  stop.store(true, std::memory_order_release);
  for (std::thread& t : searchers) t.join();
  compactor.Stop();
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(manager.updates_applied(), static_cast<uint64_t>(kBatches));
  EXPECT_EQ(manager.updates_rejected(), 0u);
  EXPECT_GE(manager.compactions(), 1u);
  // Every mutation survived every fold: the full chain is present.
  KbHandle kb = manager.PinHandle();
  for (int i = 0; i < kBatches; ++i) {
    EXPECT_NE(kb.graph.FindNode("loadnode" + std::to_string(i)), kInvalidNode)
        << "batch " << i << " lost across compactions";
  }
  CheckHandleConsistency(kb);
  // All retired snapshots really retired: only the published head (plus
  // any base still referenced by the overlay — same snapshot) is alive.
  EXPECT_EQ(manager.snapshots_live(), 1u);
}

/// Pins taken exactly at the apply and publish boundaries (via the fault
/// hooks inside the critical sections) must see the *pre*-mutation state:
/// nothing is partially visible, ever.
TEST(LiveCompactionTest, FaultHooksProveBoundaryAtomicity) {
  Fixture f;
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());

  // --- live:apply boundary ---
  std::shared_ptr<const live::LiveState> at_apply;
  manager.SetFaultHook([&](const char* point) {
    if (std::string(point) == "live:apply" && at_apply == nullptr) {
      at_apply = manager.Pin();
    }
  });
  UpdateBatch b1;
  b1.add.push_back({"faultnode1", "faultpred", "faultnode2"});
  ASSERT_TRUE(manager.Apply(b1).ok());
  ASSERT_NE(at_apply, nullptr);
  EXPECT_EQ(at_apply->graph_view().FindNode("faultnode1"), kInvalidNode)
      << "state pinned inside the apply section already shows the batch";
  EXPECT_NE(manager.PinHandle().graph.FindNode("faultnode1"), kInvalidNode);

  // --- live:fold and live:publish boundaries ---
  std::atomic<bool> fold_seen{false};
  std::shared_ptr<const live::LiveState> at_publish;
  uint64_t gen_at_publish = 0;
  manager.SetFaultHook([&](const char* point) {
    std::string p(point);
    if (p == "live:fold" && !fold_seen.exchange(true)) {
      // The fold runs outside the update lock, so a concurrent (here:
      // reentrant) Apply is admitted mid-fold. It must be rebased onto the
      // folded snapshot, not lost.
      UpdateBatch mid;
      mid.add.push_back({"midfoldnode", "faultpred", "faultnode1"});
      Status st = manager.Apply(mid);
      EXPECT_TRUE(st.ok()) << st.ToString();
    } else if (p == "live:publish") {
      at_publish = manager.Pin();
      gen_at_publish = at_publish->generation;
    }
  });
  ASSERT_TRUE(manager.CompactOnce().ok());
  ASSERT_TRUE(fold_seen.load());
  // The state pinned inside the publish section is the pre-swap one: old
  // generation, but fully consistent (it still has the mid-fold update).
  ASSERT_NE(at_publish, nullptr);
  EXPECT_EQ(gen_at_publish, 1u);
  EXPECT_NE(at_publish->graph_view().FindNode("midfoldnode"), kInvalidNode);
  // After the publish: new generation, everything folded or rebased.
  manager.SetFaultHook(nullptr);
  KbHandle kb = manager.PinHandle();
  EXPECT_EQ(kb.graph.base()->FindNode("faultnode1") != kInvalidNode, true)
      << "folded batch missing from the compacted snapshot";
  EXPECT_NE(kb.graph.FindNode("midfoldnode"), kInvalidNode)
      << "mid-fold batch lost at the publish boundary";
  EXPECT_EQ(manager.generation(), 2u);
  EXPECT_EQ(manager.overlay_depth(), 1u) << "mid-fold batch rides the overlay";

  // A second compaction folds the rebased tail.
  ASSERT_TRUE(manager.CompactOnce().ok());
  EXPECT_EQ(manager.overlay_depth(), 0u);
  EXPECT_NE(manager.PinHandle().graph.base()->FindNode("midfoldnode"),
            kInvalidNode);
}

/// ws_live_* metrics must reconcile exactly with both the manager's own
/// accessors and the client-observed operation counts — single source per
/// count, no drift.
TEST(LiveCompactionTest, MetricsReconcileExactly) {
  Fixture f;
  SnapshotManager manager(f.kb.graph, f.index, ManagerConfig());
  SearchOptions defaults;
  defaults.threads = 1;
  server::SearchService service(&manager, defaults);

  uint64_t applied = 0, rejected = 0, mutations = 0, compactions = 0;
  auto post = [&](const std::string& body, bool compact) {
    server::HttpRequest req;
    req.method = "POST";
    req.path = "/update";
    req.body = body;
    if (compact) req.params["compact"] = "1";
    return service.HandleUpdate(req);
  };
  EXPECT_EQ(post(R"({"add":[["m1","p","m2"],["m2","p","m3"]]})", false).status,
            200);
  applied += 1;
  mutations += 2;
  EXPECT_EQ(post(R"({"add":[["m3","p","m1"]],"text":[["m1","hello"]]})", true)
                .status,
            200);
  applied += 1;
  mutations += 2;
  compactions += 1;
  EXPECT_EQ(post(R"({"remove":[["mghost","p","m1"]]})", false).status, 404);
  rejected += 1;
  EXPECT_EQ(post(R"({"remove":[["m1","p","m2"]]})", true).status, 200);
  applied += 1;
  mutations += 1;
  compactions += 1;

  EXPECT_EQ(manager.updates_applied(), applied);
  EXPECT_EQ(manager.updates_rejected(), rejected);
  EXPECT_EQ(manager.mutations_applied(), mutations);
  EXPECT_EQ(manager.compactions(), compactions);

  server::HttpRequest mreq;
  mreq.method = "GET";
  mreq.path = "/metrics";
  std::string metrics = service.HandleMetrics(mreq).body;
  auto expect_metric = [&](const std::string& name, uint64_t value) {
    std::string line = name + " " + std::to_string(value);
    EXPECT_NE(metrics.find(line), std::string::npos)
        << "expected `" << line << "` in /metrics:\n"
        << metrics;
  };
  expect_metric("ws_live_updates_total", applied);
  expect_metric("ws_live_update_mutations_total", mutations);
  expect_metric("ws_live_update_rejected_total", rejected);
  expect_metric("ws_live_compactions_total", compactions);
  expect_metric("ws_live_snapshots_published_total",
                manager.snapshots_published());
  expect_metric("ws_live_snapshots_retired_total",
                manager.snapshots_retired());
  expect_metric("ws_live_generation", manager.generation());
  expect_metric("ws_live_version", manager.version());
  expect_metric("ws_live_overlay_batches", manager.overlay_depth());
  // /stats must agree with /snapshot on the same counters.
  server::HttpRequest sreq;
  sreq.method = "GET";
  sreq.path = "/stats";
  std::string stats = service.HandleStats(sreq).body;
  EXPECT_NE(stats.find("\"generation\":" + std::to_string(manager.generation())),
            std::string::npos);
  EXPECT_NE(stats.find("\"compactions\":" + std::to_string(compactions)),
            std::string::npos);
}

}  // namespace
}  // namespace wikisearch
