#include <gtest/gtest.h>

#include <cmath>

#include "core/activation.h"
#include "core/node_weight.h"
#include "graph/csr_graph.h"
#include "test_util.h"

namespace wikisearch {
namespace {

// ----------------------- Degree of summary (Eq. 2) --------------------------

TEST(NodeWeightTest, HandComputedEq2) {
  // Node "hub" receives 4 in-edges labeled A and 1 labeled B:
  // w = (4*log2(5) + 1*log2(2)) / 5.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    b.AddTriple("src" + std::to_string(i), "A", "hub");
  }
  b.AddTriple("src4", "B", "hub");
  KnowledgeGraph g = std::move(b).Build();
  double expected = (4.0 * std::log2(5.0) + 1.0 * std::log2(2.0)) / 5.0;
  EXPECT_NEAR(RawDegreeOfSummary(g, g.FindNode("hub")), expected, 1e-12);
}

TEST(NodeWeightTest, NoInEdgesIsZero) {
  GraphBuilder b;
  b.AddTriple("a", "r", "bb");
  KnowledgeGraph g = std::move(b).Build();
  EXPECT_EQ(RawDegreeOfSummary(g, g.FindNode("a")), 0.0);
}

TEST(NodeWeightTest, SameLabelHubOutweighsDiverseHub) {
  // Two nodes with 6 in-edges each: one all same-labeled (summary node, like
  // `human`), one with 6 distinct labels (informative).
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) {
    b.AddTriple("s" + std::to_string(i), "instance_of", "summary");
    b.AddTriple("t" + std::to_string(i), "rel" + std::to_string(i),
                "diverse");
  }
  KnowledgeGraph g = std::move(b).Build();
  double ws = RawDegreeOfSummary(g, g.FindNode("summary"));
  double wd = RawDegreeOfSummary(g, g.FindNode("diverse"));
  EXPECT_GT(ws, wd);
  EXPECT_NEAR(ws, std::log2(7.0), 1e-12);  // 6*log2(7)/6
  EXPECT_NEAR(wd, 1.0, 1e-12);             // log2(2)
}

TEST(NodeWeightTest, MoreSameLabeledEdgesMeansHigherWeight) {
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddTriple("a" + std::to_string(i), "r", "x");
  for (int i = 0; i < 30; ++i) b.AddTriple("b" + std::to_string(i), "r", "y");
  KnowledgeGraph g = std::move(b).Build();
  EXPECT_LT(RawDegreeOfSummary(g, g.FindNode("x")),
            RawDegreeOfSummary(g, g.FindNode("y")));
}

TEST(NodeWeightTest, NormalizedToUnitInterval) {
  GraphBuilder b;
  for (int i = 0; i < 20; ++i) b.AddTriple("s" + std::to_string(i), "r", "hub");
  b.AddTriple("hub", "r2", "leaf");
  KnowledgeGraph g = std::move(b).Build();
  std::vector<double> w = ComputeNodeWeights(g);
  double mn = 1e9, mx = -1e9;
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  EXPECT_EQ(mn, 0.0);
  EXPECT_EQ(mx, 1.0);
  EXPECT_EQ(w[g.FindNode("hub")], 1.0);  // the only heavy summary node
}

TEST(NodeWeightTest, UniformGraphAllZero) {
  // All nodes structurally identical -> degenerate range -> all zeros.
  KnowledgeGraph g =
      testing::MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  std::vector<double> w = ComputeNodeWeights(g);
  for (double x : w) EXPECT_EQ(x, 0.0);
}

TEST(NodeWeightTest, AttachStoresWeights) {
  KnowledgeGraph g = testing::MakeGraph(3, {{0, 1}, {1, 2}});
  AttachNodeWeights(&g);
  EXPECT_TRUE(g.has_weights());
  EXPECT_EQ(g.node_weights().size(), 3u);
}

// ----------------------- Activation mapping (Eq. 3-5) -----------------------

TEST(ActivationTest, PenaltyAndRewardHandValues) {
  ActivationMap map(/*A=*/4.0, /*alpha=*/0.5);
  EXPECT_EQ(map.Level(0.0), 0);   // full reward: 4 - 4 = 0
  EXPECT_EQ(map.Level(0.25), 2);  // reward 4*(0.25/0.5) = 2 -> 4-2
  EXPECT_EQ(map.Level(0.5), 4);   // w == alpha -> round(A)
  EXPECT_EQ(map.Level(0.75), 6);  // penalty 4*(0.25/0.5) = 2 -> 4+2
  EXPECT_EQ(map.Level(1.0), 8);   // full penalty: 4 + 4
}

TEST(ActivationTest, RoundsToNearestInteger) {
  ActivationMap map(/*A=*/3.7, /*alpha=*/0.5);
  EXPECT_EQ(map.Level(0.5), 4);  // round(3.7)
  EXPECT_EQ(map.Level(1.0), 7);  // round(7.4)
}

TEST(ActivationTest, MonotoneInWeight) {
  ActivationMap map(3.68, 0.1);
  int prev = -1;
  for (double w = 0.0; w <= 1.0; w += 0.01) {
    int a = map.Level(w);
    EXPECT_GE(a, prev);
    EXPECT_GE(a, 0);
    prev = a;
  }
}

TEST(ActivationTest, LargerAlphaLowersLevels) {
  // Fig. 3's effect: larger alpha maps more nodes to smaller activation
  // levels (for weights above the old alpha).
  ActivationMap strict(3.68, 0.05);
  ActivationMap loose(3.68, 0.4);
  for (double w : {0.1, 0.2, 0.3, 0.5, 0.9}) {
    EXPECT_LE(loose.Level(w), strict.Level(w)) << "w=" << w;
  }
}

TEST(ActivationTest, DisabledMapsEverythingToZero) {
  ActivationMap map(3.68, 0.1, /*enabled=*/false);
  EXPECT_EQ(map.Level(0.0), 0);
  EXPECT_EQ(map.Level(1.0), 0);
}

TEST(ActivationDeathTest, RejectsBadAlpha) {
  EXPECT_DEATH(ActivationMap(3.0, 0.0), "alpha");
  EXPECT_DEATH(ActivationMap(3.0, 1.0), "alpha");
}

TEST(ActivationDistributionTest, SumsToNodeCountAndShiftsWithAlpha) {
  GraphBuilder b;
  for (int i = 0; i < 50; ++i) {
    b.AddTriple("s" + std::to_string(i), "instance_of", "hub");
    b.AddTriple("s" + std::to_string(i), "r" + std::to_string(i % 7),
                "t" + std::to_string(i));
  }
  KnowledgeGraph g = std::move(b).Build();
  AttachNodeWeights(&g);
  g.SetAverageDistance(3.0, 0.5);

  auto mean_level = [&](double alpha) {
    auto hist = ActivationDistribution(g, alpha, 8);
    size_t total = 0;
    double weighted = 0;
    for (size_t l = 0; l < hist.size(); ++l) {
      total += hist[l];
      weighted += static_cast<double>(l) * static_cast<double>(hist[l]);
    }
    EXPECT_EQ(total, g.num_nodes());
    return weighted / static_cast<double>(total);
  };
  EXPECT_GE(mean_level(0.05), mean_level(0.4));
}

}  // namespace
}  // namespace wikisearch
