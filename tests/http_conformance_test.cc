// Byte-level HTTP/1.1 conformance battery against the live reactor server
// (DESIGN.md §13). The transport contract the event-driven tier must honor
// regardless of how bytes arrive: requests delivered one byte at a time or
// split at any boundary parse identically; pipelined bursts are answered
// strictly in request order; keep-alive connections serve many requests;
// oversized and malformed input gets the right 4xx on the offending
// connection without disturbing any other. Half the battery drives the
// incremental parser directly (deterministic byte-at-a-time coverage), the
// other half drives real sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/http_client.h"
#include "server/http_server.h"

namespace wikisearch::server {
namespace {

// Polls `cond` until true or ~`ms` elapsed. Counters increment on the
// reactor thread after the response bytes reach the kernel, so a client
// that just read a response can observe the count a beat early — poll
// instead of asserting instantly.
template <typename Cond>
bool WaitFor(Cond cond, int ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// --------------------------- Incremental parser ------------------------------

HttpConnParser::Next FeedAll(HttpConnParser* p, std::string_view bytes,
                             HttpConnParser::Request* out) {
  p->Feed(bytes.data(), bytes.size());
  return p->TryNext(out);
}

TEST(HttpConnParserTest, OneByteAtATime) {
  const std::string raw =
      "GET /search?q=a%20b&k=3 HTTP/1.1\r\nHost: x\r\nX-T: v\r\n\r\n";
  HttpConnParser p;
  HttpConnParser::Request req;
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    p.Feed(&raw[i], 1);
    ASSERT_EQ(p.TryNext(&req), HttpConnParser::Next::kNeedMore)
        << "complete after byte " << i << " of " << raw.size();
    EXPECT_TRUE(p.mid_request());
  }
  p.Feed(&raw[raw.size() - 1], 1);
  ASSERT_EQ(p.TryNext(&req), HttpConnParser::Next::kRequest);
  EXPECT_EQ(req.req.method, "GET");
  EXPECT_EQ(req.req.path, "/search");
  EXPECT_EQ(req.req.Param("q"), "a b");
  EXPECT_EQ(req.req.Param("k"), "3");
  EXPECT_EQ(req.req.headers.at("x-t"), "v");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(p.buffered_bytes(), 0u);
  EXPECT_FALSE(p.mid_request());
}

TEST(HttpConnParserTest, SplitAtEveryBoundaryParsesIdentically) {
  const std::string raw =
      "POST /update HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n"
      "hello world";
  for (size_t cut = 0; cut <= raw.size(); ++cut) {
    HttpConnParser p;
    p.Feed(raw.data(), cut);
    HttpConnParser::Request req;
    if (cut < raw.size()) {
      ASSERT_EQ(p.TryNext(&req), HttpConnParser::Next::kNeedMore)
          << "cut=" << cut;
      p.Feed(raw.data() + cut, raw.size() - cut);
    }
    ASSERT_EQ(p.TryNext(&req), HttpConnParser::Next::kRequest)
        << "cut=" << cut;
    EXPECT_EQ(req.req.method, "POST");
    EXPECT_EQ(req.req.body, "hello world");
  }
}

TEST(HttpConnParserTest, PipelinedBurstYieldsRequestsInOrder) {
  std::string burst;
  for (int i = 0; i < 16; ++i) {
    burst += "GET /r" + std::to_string(i) + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }
  HttpConnParser p;
  p.Feed(burst.data(), burst.size());
  HttpConnParser::Request req;
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(p.TryNext(&req), HttpConnParser::Next::kRequest) << i;
    EXPECT_EQ(req.req.path, "/r" + std::to_string(i));
  }
  EXPECT_EQ(p.TryNext(&req), HttpConnParser::Next::kNeedMore);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(HttpConnParserTest, KeepAliveDefaultsPerVersion) {
  struct Case {
    const char* raw;
    bool keep_alive;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", true},
  };
  for (const Case& c : cases) {
    HttpConnParser p;
    HttpConnParser::Request req;
    ASSERT_EQ(FeedAll(&p, c.raw, &req), HttpConnParser::Next::kRequest)
        << c.raw;
    EXPECT_EQ(req.keep_alive, c.keep_alive) << c.raw;
  }
}

TEST(HttpConnParserTest, LeadingCrlfBeforeRequestLineIsSkipped) {
  // RFC 7230 §3.5: a robust server skips CRLF preceding the request line
  // (the tail of the previous request's sloppy client framing).
  HttpConnParser p;
  HttpConnParser::Request req;
  ASSERT_EQ(FeedAll(&p, "\r\n\r\nGET /ok HTTP/1.1\r\nHost: x\r\n\r\n", &req),
            HttpConnParser::Next::kRequest);
  EXPECT_EQ(req.req.path, "/ok");
}

TEST(HttpConnParserTest, FramingErrorsLatchWithRightStatus) {
  struct Case {
    const char* raw;
    int code;
  } cases[] = {
      {"BLARG\r\n\r\n", 400},                              // no spaces
      {"GET /x\r\n\r\n", 400},                             // missing version
      {"GET /x HTTP/2.0\r\n\r\n", 400},                    // unknown version
      {"GET x HTTP/1.1\r\n\r\n", 400},                     // target not /
      {"GET /a%zz HTTP/1.1\r\n\r\n", 400},                 // bad %-encoding
      {"GET /a%2 HTTP/1.1\r\n\r\n", 400},                  // truncated %
      {"GET / HTTP/1.1\nHost: x\n\n", 400},                // bare LF endings
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},      // malformed header
      {"POST / HTTP/1.1\r\nContent-Length: x9\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: 4\r\n"
       "Content-Length: 5\r\n\r\n",
       400},                                               // conflicting CL
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413},
  };
  for (const Case& c : cases) {
    HttpConnParser p;
    HttpConnParser::Request req;
    EXPECT_EQ(FeedAll(&p, c.raw, &req), HttpConnParser::Next::kError) << c.raw;
    EXPECT_EQ(p.error_code(), c.code) << c.raw;
    EXPECT_FALSE(p.error_message().empty()) << c.raw;
    // The error latches: further bytes cannot un-poison the stream.
    EXPECT_EQ(FeedAll(&p, "GET / HTTP/1.1\r\n\r\n", &req),
              HttpConnParser::Next::kError)
        << c.raw;
  }
}

TEST(HttpConnParserTest, OversizedHeaderBlockIs431) {
  HttpConnParser::Limits limits;
  limits.max_header_bytes = 256;
  // Terminator never arrives: the parser must fail as soon as the head
  // region exceeds the limit, not buffer a slowloris header forever.
  HttpConnParser p(limits);
  std::string head = "GET / HTTP/1.1\r\nX-Pad: ";
  head.append(512, 'a');
  HttpConnParser::Request req;
  EXPECT_EQ(FeedAll(&p, head, &req), HttpConnParser::Next::kError);
  EXPECT_EQ(p.error_code(), 431);
  // Terminator present but the head is still too large: same answer.
  HttpConnParser q(limits);
  head += "\r\n\r\n";
  EXPECT_EQ(FeedAll(&q, head, &req), HttpConnParser::Next::kError);
  EXPECT_EQ(q.error_code(), 431);
}

TEST(HttpConnParserTest, OversizedBodyIs413) {
  HttpConnParser::Limits limits;
  limits.max_body_bytes = 64;
  HttpConnParser p(limits);
  HttpConnParser::Request req;
  EXPECT_EQ(FeedAll(&p, "POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n", &req),
            HttpConnParser::Next::kError);
  EXPECT_EQ(p.error_code(), 413);
}

// ------------------------------ Live server ----------------------------------

struct ServerFixture {
  ServerFixture() {
    server.Route("/ping", [](const HttpRequest&) {
      return HttpResponse::Text(200, "pong\n");
    });
    server.Route("/echo", [](const HttpRequest& req) {
      return HttpResponse::Text(200, req.Param("i", "none"));
    });
    EXPECT_TRUE(server.Start(0).ok());
  }
  ~ServerFixture() { server.Stop(); }
  HttpServer server;
};

TEST(HttpConformanceTest, OneByteWritesOverTheWire) {
  ServerFixture f;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  const std::string raw = "GET /echo?i=slow HTTP/1.1\r\nHost: x\r\n\r\n";
  for (char c : raw) {
    ASSERT_TRUE(conn.SendRaw(std::string_view(&c, 1)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "slow");
}

TEST(HttpConformanceTest, SplitAtEveryBoundaryOverTheWire) {
  ServerFixture f;
  const std::string raw = "GET /echo?i=cut HTTP/1.1\r\nHost: x\r\n\r\n";
  for (size_t cut = 1; cut < raw.size(); ++cut) {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(f.server.port()).ok()) << "cut=" << cut;
    ASSERT_TRUE(conn.SendRaw(std::string_view(raw.data(), cut)).ok());
    // Give the reactor a chance to see (and have to buffer) the fragment.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(
        conn.SendRaw(std::string_view(raw.data() + cut, raw.size() - cut))
            .ok());
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << "cut=" << cut << ": "
                           << resp.status().ToString();
    EXPECT_EQ(resp->status, 200) << "cut=" << cut;
    EXPECT_EQ(resp->body, "cut") << "cut=" << cut;
  }
}

TEST(HttpConformanceTest, PipeliningAnswersInRequestOrder) {
  ServerFixture f;
  for (int depth : {2, 5, 16}) {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(f.server.port()).ok());
    std::string burst;
    for (int i = 0; i < depth; ++i) {
      burst += "GET /echo?i=" + std::to_string(i) +
               " HTTP/1.1\r\nHost: x\r\n\r\n";
    }
    ASSERT_TRUE(conn.SendRaw(burst).ok());
    for (int i = 0; i < depth; ++i) {
      auto resp = conn.ReadResponse();
      ASSERT_TRUE(resp.ok())
          << "depth=" << depth << " i=" << i << ": "
          << resp.status().ToString();
      EXPECT_EQ(resp->status, 200);
      // Strict in-order delivery: response i answers request i even though
      // handlers complete on a pool in arbitrary order.
      EXPECT_EQ(resp->body, std::to_string(i)) << "depth=" << depth;
    }
  }
}

TEST(HttpConformanceTest, KeepAliveServesManyRequestsOnOneSocket) {
  ServerFixture f;
  constexpr int kRequests = 20;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  for (int i = 0; i < kRequests; ++i) {
    auto resp = conn.Get("/echo?i=" + std::to_string(i));
    ASSERT_TRUE(resp.ok()) << "request " << i;
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->body, std::to_string(i));
    EXPECT_EQ(resp->headers.at("connection"), "keep-alive");
  }
  // One TCP connection carried all of them; the counters agree.
  EXPECT_TRUE(WaitFor([&] {
    return f.server.requests_served() == static_cast<uint64_t>(kRequests);
  })) << f.server.requests_served();
  EXPECT_EQ(f.server.accepted_connections(), 1u);
  EXPECT_EQ(f.server.keepalive_reuse(), static_cast<uint64_t>(kRequests - 1));
  EXPECT_EQ(f.server.active_connections(), 1u);
}

TEST(HttpConformanceTest, ConnectionCloseIsHonored) {
  ServerFixture f;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  ASSERT_TRUE(
      conn.SendRaw("GET /ping HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                   "\r\n")
          .ok());
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->headers.at("connection"), "close");
  // The server closes after the response: the next read sees EOF.
  EXPECT_FALSE(conn.ReadResponse().ok());
}

TEST(HttpConformanceTest, Http10DefaultsToCloseUnlessAsked) {
  ServerFixture f;
  {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(f.server.port()).ok());
    ASSERT_TRUE(conn.SendRaw("GET /ping HTTP/1.0\r\n\r\n").ok());
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->headers.at("connection"), "close");
    EXPECT_FALSE(conn.ReadResponse().ok());  // EOF
  }
  {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(f.server.port()).ok());
    ASSERT_TRUE(
        conn.SendRaw("GET /ping HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .ok());
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->headers.at("connection"), "keep-alive");
    // The connection stays usable.
    ASSERT_TRUE(
        conn.SendRaw("GET /ping HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .ok());
    EXPECT_TRUE(conn.ReadResponse().ok());
  }
}

TEST(HttpConformanceTest, OversizedHeaderGets431AndClose) {
  ServerFixture f;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  std::string head = "GET /ping HTTP/1.1\r\nX-Pad: ";
  head.append(20 * 1024, 'a');  // past the 16 KiB default head limit
  head += "\r\n\r\n";
  ASSERT_TRUE(conn.SendRaw(head).ok());
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 431);
  EXPECT_EQ(resp->headers.at("connection"), "close");
  EXPECT_FALSE(conn.ReadResponse().ok());  // connection closed
}

TEST(HttpConformanceTest, OversizedBodyGets413WithoutSendingIt) {
  ServerFixture f;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  // Declares 8 MiB (past the 4 MiB default) but never sends a byte of it:
  // the server must answer from the Content-Length alone.
  ASSERT_TRUE(
      conn.SendRaw("POST /ping HTTP/1.1\r\nHost: x\r\n"
                   "Content-Length: 8388608\r\n\r\n")
          .ok());
  auto resp = conn.ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 413);
  EXPECT_EQ(resp->headers.at("connection"), "close");
}

TEST(HttpConformanceTest, MalformedRequestsGet400WithoutKillingTheServer) {
  ServerFixture f;
  const char* bad[] = {
      "BLARG\r\n\r\n",
      "GET /a%zz HTTP/1.1\r\n\r\n",
      "GET /ping HTTP/1.1\nHost: x\n\n",  // bare-LF line endings
      "GET /ping HTTP/9.9\r\n\r\n",
  };
  for (const char* raw : bad) {
    HttpConnection conn;
    ASSERT_TRUE(conn.Connect(f.server.port()).ok()) << raw;
    ASSERT_TRUE(conn.SendRaw(raw).ok());
    auto resp = conn.ReadResponse();
    ASSERT_TRUE(resp.ok()) << raw;
    EXPECT_EQ(resp->status, 400) << raw;
    EXPECT_EQ(resp->headers.at("connection"), "close") << raw;
    // A fresh, well-formed connection is entirely unaffected.
    auto ok = HttpGet(f.server.port(), "/ping");
    ASSERT_TRUE(ok.ok()) << raw;
    EXPECT_EQ(ok->status, 200) << raw;
  }
}

TEST(HttpConformanceTest, GarbageAfterValidPipelinePoisonsOnlyTheTail) {
  ServerFixture f;
  HttpConnection conn;
  ASSERT_TRUE(conn.Connect(f.server.port()).ok());
  // Two good requests followed by garbage: both good ones are answered in
  // order, then the 400, then close.
  ASSERT_TRUE(
      conn.SendRaw("GET /echo?i=0 HTTP/1.1\r\nHost: x\r\n\r\n"
                   "GET /echo?i=1 HTTP/1.1\r\nHost: x\r\n\r\n"
                   "NOT HTTP AT ALL\r\n\r\n")
          .ok());
  auto r0 = conn.ReadResponse();
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0->status, 200);
  EXPECT_EQ(r0->body, "0");
  auto r1 = conn.ReadResponse();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->status, 200);
  EXPECT_EQ(r1->body, "1");
  auto r2 = conn.ReadResponse();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->status, 400);
}

}  // namespace
}  // namespace wikisearch::server
