// Scalar-vs-AVX2 kernel equivalence (DESIGN.md §11): every kernel Ops
// implementation must commit byte-identical search state, so the two ISA
// paths must return byte-identical answers on every engine kind, thread
// count, state-reuse mode, and at every forced deadline-expiry point. The
// suite also property-checks that the degree-bucketed expansion schedule
// cannot leak into the central-candidate commit order (ascending NodeId per
// level regardless of how frontier nodes were binned or split).
//
// On hosts (or builds) where the AVX2 kernels cannot dispatch —
// !kernel::Avx2Usable(), e.g. under WIKISEARCH_FORCE_SCALAR or TSan — the
// cross-ISA tests skip gracefully; the schedule property tests still run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/bottom_up.h"
#include "core/engine.h"
#include "core/kernel/kernel.h"
#include "core/node_weight.h"
#include "core/state_pool.h"
#include "gen/wikigen.h"
#include "graph/distance_sampler.h"
#include "test_util.h"

namespace wikisearch {
namespace {

struct Fixture {
  Fixture() {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 1200;
    cfg.num_summary_nodes = 6;
    cfg.num_topic_nodes = 14;
    cfg.num_communities = 7;
    cfg.vocab_size = 1600;
    cfg.seed = 1213;
    kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);
    AttachAverageDistance(&kb.graph, 1500, 5);
    index = InvertedIndex::Build(kb.graph);
  }
  gen::GeneratedKb kb;
  InvertedIndex index;
};

Fixture& SharedFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

std::vector<std::vector<std::string>> TestQueries(const Fixture& f,
                                                  size_t count) {
  Rng rng(testing::TestSeed());
  std::vector<std::vector<std::string>> queries;
  while (queries.size() < count) {
    const auto& terms =
        f.kb.meta
            .community_terms[rng.Uniform(f.kb.meta.community_terms.size())];
    std::vector<std::string> kws;
    size_t q = 2 + rng.Uniform(4);
    for (size_t i = 0; i < 2 * q && kws.size() < q; ++i) {
      const std::string& t = terms[rng.Uniform(terms.size())];
      if (!f.index.Lookup(t).empty() &&
          std::find(kws.begin(), kws.end(), t) == kws.end()) {
        kws.push_back(t);
      }
    }
    if (kws.size() >= 2) queries.push_back(std::move(kws));
  }
  return queries;
}

// Byte-identical, not merely equivalent: both ISA paths commit the same
// search state, so extraction runs the same arithmetic on the same inputs
// and even the floating-point scores must match exactly.
void ExpectByteIdentical(const SearchResult& a, const SearchResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    const AnswerGraph& x = a.answers[i];
    const AnswerGraph& y = b.answers[i];
    EXPECT_EQ(x.central, y.central) << label << " answer " << i;
    EXPECT_EQ(x.depth, y.depth) << label << " answer " << i;
    EXPECT_EQ(x.nodes, y.nodes) << label << " answer " << i;
    EXPECT_TRUE(x.edges == y.edges) << label << " answer " << i;
    EXPECT_EQ(x.score, y.score) << label << " answer " << i;
  }
  EXPECT_EQ(a.stats.num_centrals, b.stats.num_centrals) << label;
  EXPECT_EQ(a.stats.levels, b.stats.levels) << label;
}

const EngineKind kAllEngines[] = {
    EngineKind::kSequential,
    EngineKind::kCpuParallel,
    EngineKind::kCpuDynamic,
    EngineKind::kGpuSim,
};

class KernelEquivalenceTest : public ::testing::TestWithParam<EngineKind> {};

// ---------------------------------------------------------------------------
// Scalar vs AVX2 across engine kinds x {1, 8} threads x pooled/fresh states.

TEST_P(KernelEquivalenceTest, ScalarVsAvx2AcrossThreadsAndStateModes) {
  if (!kernel::Avx2Usable()) {
    GTEST_SKIP() << "AVX2 kernels not dispatchable on this host/build";
  }
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 3);

  for (int threads : {1, 8}) {
    SearchOptions base;
    base.top_k = 10;
    base.threads = threads;
    base.engine = GetParam();

    SearchOptions scalar_opts = base;
    scalar_opts.kernel_isa = KernelIsa::kScalar;
    SearchOptions avx2_opts = base;
    avx2_opts.kernel_isa = KernelIsa::kAvx2;

    // Pooled: one engine (and state pool) per ISA serves the whole query
    // stream, so later queries run on epoch-reused SearchStates.
    {
      SearchStatePool scalar_pool, avx2_pool;
      SearchEngine scalar_engine(&f.kb.graph, &f.index, scalar_opts);
      scalar_engine.SetStatePool(&scalar_pool);
      SearchEngine avx2_engine(&f.kb.graph, &f.index, avx2_opts);
      avx2_engine.SetStatePool(&avx2_pool);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        auto s = scalar_engine.SearchKeywords(queries[qi], scalar_opts);
        auto v = avx2_engine.SearchKeywords(queries[qi], avx2_opts);
        ASSERT_TRUE(s.ok()) << s.status().ToString();
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        ExpectByteIdentical(*s, *v,
                            std::string(EngineKindName(GetParam())) + " T" +
                                std::to_string(threads) + " pooled q" +
                                std::to_string(qi));
      }
    }

    // Fresh: a new engine per query — first-epoch state every time.
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      SearchEngine scalar_engine(&f.kb.graph, &f.index, scalar_opts);
      SearchEngine avx2_engine(&f.kb.graph, &f.index, avx2_opts);
      auto s = scalar_engine.SearchKeywords(queries[qi], scalar_opts);
      auto v = avx2_engine.SearchKeywords(queries[qi], avx2_opts);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      ExpectByteIdentical(*s, *v,
                          std::string(EngineKindName(GetParam())) + " T" +
                              std::to_string(threads) + " fresh q" +
                              std::to_string(qi));
    }
  }
}

// ---------------------------------------------------------------------------
// Forced deadline expiry at every fault point, on both ISA paths: the
// aborted run must yield valid partial answers, and the pooled state it
// leaves behind must recover to byte-identical clean answers across ISAs.

TEST_P(KernelEquivalenceTest, DeadlineExpiryAtEveryFaultPoint) {
  if (!kernel::Avx2Usable()) {
    GTEST_SKIP() << "AVX2 kernels not dispatchable on this host/build";
  }
  Fixture& f = SharedFixture();
  auto queries = TestQueries(f, 1);
  const auto& kws = queries[0];

  const bool dynamic = GetParam() == EngineKind::kCpuDynamic;
  const char* const lock_free_points[] = {
      "bottomup:level", "bottomup:identify", "bottomup:chunk",
      "stage:topdown", "topdown:candidate",
  };
  const char* const dynamic_points[] = {
      "dynamic:level", "dynamic:chunk", "dynamic:topdown",
  };
  const char* const* points = dynamic ? dynamic_points : lock_free_points;
  const size_t num_points =
      dynamic ? std::size(dynamic_points) : std::size(lock_free_points);

  for (size_t pi = 0; pi < num_points; ++pi) {
    // Alternate thread counts across points so both pool widths see every
    // expiry path without doubling the (stall-dominated) runtime.
    const int threads = (pi % 2 == 0) ? 1 : 8;
    SCOPED_TRACE(std::string(EngineKindName(GetParam())) + " @ " +
                 points[pi] + " T" + std::to_string(threads));

    SearchResult clean_by_isa[2];
    const KernelIsa isas[2] = {KernelIsa::kScalar, KernelIsa::kAvx2};
    for (int ki = 0; ki < 2; ++ki) {
      SearchOptions opts;
      opts.top_k = 10;
      opts.threads = threads;
      opts.engine = GetParam();
      opts.kernel_isa = isas[ki];
      opts.deadline_ms = 25.0;
      auto fired = std::make_shared<std::atomic<bool>>(false);
      std::string target = points[pi];
      opts.fault_injection = [fired, target](const char* p) {
        if (target == p && !fired->exchange(true)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
      };

      SearchStatePool pool;
      SearchEngine engine(&f.kb.graph, &f.index, opts);
      engine.SetStatePool(&pool);
      auto res = engine.SearchKeywords(kws, opts);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_TRUE(res->stats.timed_out);
      for (const AnswerGraph& a : res->answers) {
        testing::CheckAnswerInvariants(f.kb.graph, a, res->keywords.size());
      }

      // Reuse the state the aborted run left in the pool.
      SearchOptions clean = opts;
      clean.deadline_ms = 0.0;
      clean.fault_injection = nullptr;
      auto after = engine.SearchKeywords(kws, clean);
      ASSERT_TRUE(after.ok()) << after.status().ToString();
      EXPECT_FALSE(after->stats.timed_out);
      clean_by_isa[ki] = *after;
    }
    ExpectByteIdentical(clean_by_isa[0], clean_by_isa[1],
                        "post-expiry scalar vs avx2");
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, KernelEquivalenceTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           // Param names must be alphanumeric ("CPU-Par"
                           // is not).
                           std::string name = EngineKindName(i.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// ---------------------------------------------------------------------------
// Degree-bucketed schedule property: binning frontier nodes into tiers and
// splitting hubs into sub-ranges must not perturb the central-candidate
// commit order — candidates of one level commit in ascending NodeId order
// under every schedule (the WS_CHECK in bottom_up.cc enforces strictness;
// this test checks the cross-schedule agreement on top of it).

void ExpectSameCentralsAscending(const std::vector<CentralCandidate>& a,
                                 const std::vector<CentralCandidate>& b,
                                 const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node) << label << " candidate " << i;
    EXPECT_EQ(a[i].depth, b[i].depth) << label << " candidate " << i;
    if (i > 0 && a[i].depth == a[i - 1].depth) {
      EXPECT_LT(a[i - 1].node, a[i].node)
          << label << " commit order not ascending within level";
    }
  }
}

std::vector<CentralCandidate> RunBottomUp(
    const KnowledgeGraph& g, const std::vector<std::vector<NodeId>>& groups,
    int threads, bool bucketed) {
  QueryContext ctx(g, {}, groups, ActivationMap(2.5, 0.3), /*max_level=*/20);
  SearchState state(g.num_nodes(), ctx.num_keywords());
  ThreadPool pool(threads);
  SearchOptions opts;
  opts.top_k = 1 << 20;  // never stop early: identify every level
  opts.degree_bucketed_expansion = bucketed;
  PhaseTimings timings;
  BottomUpSearch(ctx, opts, &pool, &state, &timings, /*gpu_style=*/false);
  return state.centrals();
}

TEST(DegreeBucketProperty, CommitOrderInvariantOnRandomGraphs) {
  Rng rng(testing::TestSeed());
  for (int rep = 0; rep < 3; ++rep) {
    gen::WikiGenConfig cfg;
    cfg.num_entities = 500 + 137 * rep;
    cfg.num_summary_nodes = 4;
    cfg.num_topic_nodes = 8;
    cfg.num_communities = 5;
    cfg.vocab_size = 700;
    cfg.seed = rng.Uniform(1u << 30);
    gen::GeneratedKb kb = gen::Generate(cfg);
    AttachNodeWeights(&kb.graph);

    // Random keyword-node groups: the property is purely structural, so the
    // seeds need not correspond to any text.
    const size_t q = 3 + rng.Uniform(4);
    std::vector<std::vector<NodeId>> groups(q);
    for (auto& g : groups) {
      const size_t sz = 1 + rng.Uniform(4);
      for (size_t s = 0; s < sz; ++s) {
        g.push_back(static_cast<NodeId>(
            rng.Uniform(kb.graph.num_nodes())));
      }
      std::sort(g.begin(), g.end());
      g.erase(std::unique(g.begin(), g.end()), g.end());
    }

    auto flat1 = RunBottomUp(kb.graph, groups, /*threads=*/1,
                             /*bucketed=*/false);
    auto flat8 = RunBottomUp(kb.graph, groups, 8, false);
    auto bucket1 = RunBottomUp(kb.graph, groups, 1, true);
    auto bucket8 = RunBottomUp(kb.graph, groups, 8, true);
    const std::string label = "rep " + std::to_string(rep);
    ExpectSameCentralsAscending(flat1, flat8, label + " flat1 vs flat8");
    ExpectSameCentralsAscending(flat1, bucket1, label + " flat1 vs bucket1");
    ExpectSameCentralsAscending(flat1, bucket8, label + " flat1 vs bucket8");
  }
}

TEST(DegreeBucketProperty, CommitOrderInvariantWithHubSplitting) {
  // A star whose hub degree far exceeds kTierHubMinDegree, so the bucketed
  // schedule genuinely splits it into sub-ranges; keywords are planted on
  // leaves so every instance must traverse the hub.
  GraphBuilder b;
  const int leaves = static_cast<int>(kernel::kTierHubMinDegree) + 700;
  for (int i = 0; i < leaves; ++i) {
    b.AddTriple("hub", "r", "leaf " + std::to_string(i));
  }
  // A few chains off distinct leaves create multi-level structure.
  for (int c = 0; c < 5; ++c) {
    std::string prev = "leaf " + std::to_string(c * 100);
    for (int d = 0; d < 3; ++d) {
      std::string next = "tail " + std::to_string(c) + "-" + std::to_string(d);
      b.AddTriple(prev, "r", next);
      prev = next;
    }
  }
  KnowledgeGraph graph = std::move(b).Build();
  AttachNodeWeights(&graph);

  Rng rng(testing::TestSeed());
  std::vector<std::vector<NodeId>> groups(4);
  for (auto& g : groups) {
    for (int s = 0; s < 3; ++s) {
      g.push_back(static_cast<NodeId>(rng.Uniform(graph.num_nodes())));
    }
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
  }

  auto flat = RunBottomUp(graph, groups, 8, false);
  auto bucket1 = RunBottomUp(graph, groups, 1, true);
  auto bucket8 = RunBottomUp(graph, groups, 8, true);
  ExpectSameCentralsAscending(flat, bucket8, "star flat8 vs bucket8");
  ExpectSameCentralsAscending(bucket1, bucket8, "star bucket1 vs bucket8");
  EXPECT_FALSE(flat.empty());  // the star must actually produce centrals
}

}  // namespace
}  // namespace wikisearch
