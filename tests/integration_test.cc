// End-to-end pipeline tests on generated knowledge bases: generate ->
// weight -> sample A -> index -> search (all engines) -> judge, plus
// IO round-trips of prepared datasets and cross-cutting properties the
// paper claims (alpha controls summary-node admission, Central Graph beats
// BANKS-II on phrase-split queries under the co-occurrence judgment).
#include <gtest/gtest.h>

#include "banks/banks.h"
#include "core/engine.h"
#include "core/node_weight.h"
#include "eval/harness.h"
#include "eval/relevance.h"
#include "graph/distance_sampler.h"
#include "graph/graph_io.h"
#include "test_util.h"

namespace wikisearch {
namespace {

gen::WikiGenConfig MediumConfig() {
  gen::WikiGenConfig cfg;
  cfg.num_entities = 4000;
  cfg.num_summary_nodes = 8;
  cfg.num_topic_nodes = 24;
  cfg.num_communities = 12;
  cfg.vocab_size = 4000;
  cfg.seed = 31337;
  return cfg;
}

const eval::DatasetBundle& Data() {
  static const eval::DatasetBundle* data =
      new eval::DatasetBundle(eval::PrepareDataset(MediumConfig(), "it"));
  return *data;
}

TEST(IntegrationTest, EveryWorkloadQueryYieldsAnswers) {
  const auto& data = Data();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 10, 5);
  SearchOptions opts;
  opts.top_k = 10;
  opts.threads = 2;
  SearchEngine engine(&data.kb.graph, &data.index, opts);
  for (const auto& q : queries) {
    Result<SearchResult> res = engine.SearchKeywords(q.keywords, opts);
    ASSERT_TRUE(res.ok()) << q.id;
    EXPECT_FALSE(res->answers.empty()) << q.id;
    for (const AnswerGraph& a : res->answers) {
      testing::CheckAnswerInvariants(data.kb.graph, a, q.keywords.size());
      EXPECT_LE(a.depth, res->stats.levels);
    }
  }
}

TEST(IntegrationTest, PreparedDatasetSurvivesSaveLoad) {
  const auto& data = Data();
  std::string path = ::testing::TempDir() + "/ws_it_dataset.wskg";
  ASSERT_TRUE(SaveGraph(data.kb.graph, path).ok());
  Result<KnowledgeGraph> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  // Search results over the reloaded graph are identical.
  InvertedIndex index2 = InvertedIndex::Build(*loaded);
  SearchOptions opts;
  opts.top_k = 5;
  SearchEngine e1(&data.kb.graph, &data.index, opts);
  SearchEngine e2(&*loaded, &index2, opts);
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 3, 3, 9);
  for (const auto& q : queries) {
    auto r1 = e1.SearchKeywords(q.keywords, opts);
    auto r2 = e2.SearchKeywords(q.keywords, opts);
    ASSERT_TRUE(r1.ok() && r2.ok());
    ASSERT_EQ(r1->answers.size(), r2->answers.size());
    for (size_t i = 0; i < r1->answers.size(); ++i) {
      EXPECT_EQ(r1->answers[i].central, r2->answers[i].central);
      EXPECT_EQ(r1->answers[i].nodes, r2->answers[i].nodes);
    }
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, LargerAlphaAdmitsMoreSummaryNodes) {
  // Sec. IV-C: with alpha = 0.4 the topic/summary hubs activate earlier and
  // show up in answers more often than with alpha = 0.05.
  const auto& data = Data();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 12, 21);

  auto hub_appearances = [&](double alpha) {
    SearchOptions opts;
    opts.top_k = 10;
    opts.alpha = alpha;
    SearchEngine engine(&data.kb.graph, &data.index, opts);
    size_t hubs = 0;
    for (const auto& q : queries) {
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (!res.ok()) continue;
      for (const AnswerGraph& a : res->answers) {
        for (NodeId v : a.nodes) {
          if (data.kb.graph.NodeWeight(v) > 0.35) ++hubs;
        }
      }
    }
    return hubs;
  };
  EXPECT_GE(hub_appearances(0.4), hub_appearances(0.05));
}

TEST(IntegrationTest, CentralGraphBeatsBanksOnPhraseSplitQueries) {
  // The paper's effectiveness headline (Fig. 11/12 discussion): BANKS-II's
  // sum-of-paths scoring ignores keyword co-occurrence and loses on
  // phrase-split queries, while some alpha setting of WikiSearch matches or
  // beats it.
  const auto& data = Data();
  eval::RelevanceJudge judge(&data.kb);
  auto queries = gen::MakeEffectivenessWorkload(data.kb, data.index, 77);

  double cg_total = 0.0, banks_total = 0.0;
  int counted = 0;
  banks::BanksEngine banks_engine(&data.kb.graph, &data.index);
  for (size_t qi = 3; qi <= 6; ++qi) {  // the phrase-split queries Q4-Q7
    const gen::Query& q = queries[qi];
    double best_cg = 0.0;
    for (double alpha : {0.05, 0.1, 0.4}) {
      SearchOptions opts;
      opts.top_k = 10;
      opts.alpha = alpha;
      SearchEngine engine(&data.kb.graph, &data.index, opts);
      auto res = engine.SearchKeywords(q.keywords, opts);
      if (res.ok()) {
        best_cg =
            std::max(best_cg, judge.TopKPrecision(q, res->answers, 10));
      }
    }
    banks::BanksOptions bopts;
    bopts.top_k = 10;
    bopts.time_limit_ms = 3000;
    auto bres = banks_engine.SearchKeywords(q.keywords, bopts);
    double banks_p =
        bres.ok() ? judge.TopKPrecision(q, bres->answers, 10) : 0.0;
    cg_total += best_cg;
    banks_total += banks_p;
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_GE(cg_total, banks_total);
}

TEST(IntegrationTest, DynamicEngineMatchesOnRealWorkload) {
  const auto& data = Data();
  auto queries = gen::MakeEfficiencyWorkload(data.kb, data.index, 4, 4, 55);
  SearchOptions fast;
  fast.top_k = 8;
  fast.threads = 2;
  fast.engine = EngineKind::kCpuParallel;
  SearchOptions slow = fast;
  slow.engine = EngineKind::kCpuDynamic;
  SearchEngine engine(&data.kb.graph, &data.index, fast);
  for (const auto& q : queries) {
    auto a = engine.SearchKeywords(q.keywords, fast);
    auto b = engine.SearchKeywords(q.keywords, slow);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->answers.size(), b->answers.size()) << q.id;
    for (size_t i = 0; i < a->answers.size(); ++i) {
      EXPECT_EQ(a->answers[i].central, b->answers[i].central);
      EXPECT_EQ(a->answers[i].nodes, b->answers[i].nodes);
    }
  }
}

}  // namespace
}  // namespace wikisearch
