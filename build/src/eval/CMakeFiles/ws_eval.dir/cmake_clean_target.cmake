file(REMOVE_RECURSE
  "libws_eval.a"
)
