# Empty dependencies file for ws_eval.
# This may be replaced when dependencies are built.
