file(REMOVE_RECURSE
  "CMakeFiles/ws_eval.dir/harness.cc.o"
  "CMakeFiles/ws_eval.dir/harness.cc.o.d"
  "CMakeFiles/ws_eval.dir/relevance.cc.o"
  "CMakeFiles/ws_eval.dir/relevance.cc.o.d"
  "libws_eval.a"
  "libws_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
