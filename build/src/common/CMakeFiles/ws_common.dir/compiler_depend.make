# Empty compiler generated dependencies file for ws_common.
# This may be replaced when dependencies are built.
