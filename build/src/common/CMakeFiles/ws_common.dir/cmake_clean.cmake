file(REMOVE_RECURSE
  "CMakeFiles/ws_common.dir/json.cc.o"
  "CMakeFiles/ws_common.dir/json.cc.o.d"
  "CMakeFiles/ws_common.dir/random.cc.o"
  "CMakeFiles/ws_common.dir/random.cc.o.d"
  "CMakeFiles/ws_common.dir/status.cc.o"
  "CMakeFiles/ws_common.dir/status.cc.o.d"
  "CMakeFiles/ws_common.dir/thread_pool.cc.o"
  "CMakeFiles/ws_common.dir/thread_pool.cc.o.d"
  "libws_common.a"
  "libws_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
