file(REMOVE_RECURSE
  "libws_common.a"
)
