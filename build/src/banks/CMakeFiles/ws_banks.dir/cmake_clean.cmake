file(REMOVE_RECURSE
  "CMakeFiles/ws_banks.dir/banks.cc.o"
  "CMakeFiles/ws_banks.dir/banks.cc.o.d"
  "libws_banks.a"
  "libws_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
