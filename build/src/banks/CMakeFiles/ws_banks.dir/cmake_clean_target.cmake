file(REMOVE_RECURSE
  "libws_banks.a"
)
