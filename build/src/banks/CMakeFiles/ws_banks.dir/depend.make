# Empty dependencies file for ws_banks.
# This may be replaced when dependencies are built.
