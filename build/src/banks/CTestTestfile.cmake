# CMake generated Testfile for 
# Source directory: /root/repo/src/banks
# Build directory: /root/repo/build/src/banks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
