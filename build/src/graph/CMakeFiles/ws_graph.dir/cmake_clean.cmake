file(REMOVE_RECURSE
  "CMakeFiles/ws_graph.dir/csr_graph.cc.o"
  "CMakeFiles/ws_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/ws_graph.dir/distance_sampler.cc.o"
  "CMakeFiles/ws_graph.dir/distance_sampler.cc.o.d"
  "CMakeFiles/ws_graph.dir/graph_algos.cc.o"
  "CMakeFiles/ws_graph.dir/graph_algos.cc.o.d"
  "CMakeFiles/ws_graph.dir/graph_io.cc.o"
  "CMakeFiles/ws_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/ws_graph.dir/graph_stats.cc.o"
  "CMakeFiles/ws_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/ws_graph.dir/ntriples.cc.o"
  "CMakeFiles/ws_graph.dir/ntriples.cc.o.d"
  "libws_graph.a"
  "libws_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
