file(REMOVE_RECURSE
  "libws_graph.a"
)
