# Empty compiler generated dependencies file for ws_graph.
# This may be replaced when dependencies are built.
