file(REMOVE_RECURSE
  "libws_blinks.a"
)
