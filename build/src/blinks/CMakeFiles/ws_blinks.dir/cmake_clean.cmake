file(REMOVE_RECURSE
  "CMakeFiles/ws_blinks.dir/blinks_engine.cc.o"
  "CMakeFiles/ws_blinks.dir/blinks_engine.cc.o.d"
  "CMakeFiles/ws_blinks.dir/blinks_index.cc.o"
  "CMakeFiles/ws_blinks.dir/blinks_index.cc.o.d"
  "libws_blinks.a"
  "libws_blinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_blinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
