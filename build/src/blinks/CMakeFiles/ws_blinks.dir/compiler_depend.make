# Empty compiler generated dependencies file for ws_blinks.
# This may be replaced when dependencies are built.
