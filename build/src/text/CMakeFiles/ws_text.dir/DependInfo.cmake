
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/inverted_index.cc" "src/text/CMakeFiles/ws_text.dir/inverted_index.cc.o" "gcc" "src/text/CMakeFiles/ws_text.dir/inverted_index.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/text/CMakeFiles/ws_text.dir/porter_stemmer.cc.o" "gcc" "src/text/CMakeFiles/ws_text.dir/porter_stemmer.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/ws_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/ws_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ws_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
