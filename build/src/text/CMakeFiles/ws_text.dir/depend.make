# Empty dependencies file for ws_text.
# This may be replaced when dependencies are built.
