file(REMOVE_RECURSE
  "libws_text.a"
)
