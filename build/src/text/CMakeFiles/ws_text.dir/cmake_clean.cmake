file(REMOVE_RECURSE
  "CMakeFiles/ws_text.dir/inverted_index.cc.o"
  "CMakeFiles/ws_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/ws_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/ws_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/ws_text.dir/tokenizer.cc.o"
  "CMakeFiles/ws_text.dir/tokenizer.cc.o.d"
  "libws_text.a"
  "libws_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
