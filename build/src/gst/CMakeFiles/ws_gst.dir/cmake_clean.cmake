file(REMOVE_RECURSE
  "CMakeFiles/ws_gst.dir/dpbf.cc.o"
  "CMakeFiles/ws_gst.dir/dpbf.cc.o.d"
  "CMakeFiles/ws_gst.dir/objectrank.cc.o"
  "CMakeFiles/ws_gst.dir/objectrank.cc.o.d"
  "CMakeFiles/ws_gst.dir/rclique.cc.o"
  "CMakeFiles/ws_gst.dir/rclique.cc.o.d"
  "libws_gst.a"
  "libws_gst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_gst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
