file(REMOVE_RECURSE
  "libws_gst.a"
)
