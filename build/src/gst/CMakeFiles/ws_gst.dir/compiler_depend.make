# Empty compiler generated dependencies file for ws_gst.
# This may be replaced when dependencies are built.
