
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/vocab.cc" "src/gen/CMakeFiles/ws_gen.dir/vocab.cc.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/vocab.cc.o.d"
  "/root/repo/src/gen/wikigen.cc" "src/gen/CMakeFiles/ws_gen.dir/wikigen.cc.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/wikigen.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/gen/CMakeFiles/ws_gen.dir/workload.cc.o" "gcc" "src/gen/CMakeFiles/ws_gen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ws_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ws_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
