file(REMOVE_RECURSE
  "CMakeFiles/ws_gen.dir/vocab.cc.o"
  "CMakeFiles/ws_gen.dir/vocab.cc.o.d"
  "CMakeFiles/ws_gen.dir/wikigen.cc.o"
  "CMakeFiles/ws_gen.dir/wikigen.cc.o.d"
  "CMakeFiles/ws_gen.dir/workload.cc.o"
  "CMakeFiles/ws_gen.dir/workload.cc.o.d"
  "libws_gen.a"
  "libws_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
