# Empty dependencies file for ws_gen.
# This may be replaced when dependencies are built.
