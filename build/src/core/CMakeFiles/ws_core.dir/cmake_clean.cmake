file(REMOVE_RECURSE
  "CMakeFiles/ws_core.dir/activation.cc.o"
  "CMakeFiles/ws_core.dir/activation.cc.o.d"
  "CMakeFiles/ws_core.dir/answer.cc.o"
  "CMakeFiles/ws_core.dir/answer.cc.o.d"
  "CMakeFiles/ws_core.dir/batch.cc.o"
  "CMakeFiles/ws_core.dir/batch.cc.o.d"
  "CMakeFiles/ws_core.dir/bfs_state.cc.o"
  "CMakeFiles/ws_core.dir/bfs_state.cc.o.d"
  "CMakeFiles/ws_core.dir/bottom_up.cc.o"
  "CMakeFiles/ws_core.dir/bottom_up.cc.o.d"
  "CMakeFiles/ws_core.dir/engine.cc.o"
  "CMakeFiles/ws_core.dir/engine.cc.o.d"
  "CMakeFiles/ws_core.dir/engine_dynamic.cc.o"
  "CMakeFiles/ws_core.dir/engine_dynamic.cc.o.d"
  "CMakeFiles/ws_core.dir/extraction.cc.o"
  "CMakeFiles/ws_core.dir/extraction.cc.o.d"
  "CMakeFiles/ws_core.dir/level_cover.cc.o"
  "CMakeFiles/ws_core.dir/level_cover.cc.o.d"
  "CMakeFiles/ws_core.dir/node_weight.cc.o"
  "CMakeFiles/ws_core.dir/node_weight.cc.o.d"
  "CMakeFiles/ws_core.dir/top_down.cc.o"
  "CMakeFiles/ws_core.dir/top_down.cc.o.d"
  "libws_core.a"
  "libws_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
