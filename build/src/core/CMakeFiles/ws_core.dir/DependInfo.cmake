
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activation.cc" "src/core/CMakeFiles/ws_core.dir/activation.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/activation.cc.o.d"
  "/root/repo/src/core/answer.cc" "src/core/CMakeFiles/ws_core.dir/answer.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/answer.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/core/CMakeFiles/ws_core.dir/batch.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/batch.cc.o.d"
  "/root/repo/src/core/bfs_state.cc" "src/core/CMakeFiles/ws_core.dir/bfs_state.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/bfs_state.cc.o.d"
  "/root/repo/src/core/bottom_up.cc" "src/core/CMakeFiles/ws_core.dir/bottom_up.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/bottom_up.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/ws_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/engine.cc.o.d"
  "/root/repo/src/core/engine_dynamic.cc" "src/core/CMakeFiles/ws_core.dir/engine_dynamic.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/engine_dynamic.cc.o.d"
  "/root/repo/src/core/extraction.cc" "src/core/CMakeFiles/ws_core.dir/extraction.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/extraction.cc.o.d"
  "/root/repo/src/core/level_cover.cc" "src/core/CMakeFiles/ws_core.dir/level_cover.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/level_cover.cc.o.d"
  "/root/repo/src/core/node_weight.cc" "src/core/CMakeFiles/ws_core.dir/node_weight.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/node_weight.cc.o.d"
  "/root/repo/src/core/top_down.cc" "src/core/CMakeFiles/ws_core.dir/top_down.cc.o" "gcc" "src/core/CMakeFiles/ws_core.dir/top_down.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ws_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ws_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ws_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
