file(REMOVE_RECURSE
  "libws_core.a"
)
