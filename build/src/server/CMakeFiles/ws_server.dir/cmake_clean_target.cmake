file(REMOVE_RECURSE
  "libws_server.a"
)
