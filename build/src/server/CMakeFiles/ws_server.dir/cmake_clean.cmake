file(REMOVE_RECURSE
  "CMakeFiles/ws_server.dir/http_client.cc.o"
  "CMakeFiles/ws_server.dir/http_client.cc.o.d"
  "CMakeFiles/ws_server.dir/http_server.cc.o"
  "CMakeFiles/ws_server.dir/http_server.cc.o.d"
  "CMakeFiles/ws_server.dir/query_cache.cc.o"
  "CMakeFiles/ws_server.dir/query_cache.cc.o.d"
  "CMakeFiles/ws_server.dir/search_service.cc.o"
  "CMakeFiles/ws_server.dir/search_service.cc.o.d"
  "libws_server.a"
  "libws_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
