# Empty compiler generated dependencies file for ws_server.
# This may be replaced when dependencies are built.
