file(REMOVE_RECURSE
  "CMakeFiles/build_dataset.dir/build_dataset.cpp.o"
  "CMakeFiles/build_dataset.dir/build_dataset.cpp.o.d"
  "build_dataset"
  "build_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
