# Empty dependencies file for build_dataset.
# This may be replaced when dependencies are built.
