# Empty compiler generated dependencies file for kb_stats.
# This may be replaced when dependencies are built.
