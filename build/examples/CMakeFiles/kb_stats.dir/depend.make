# Empty dependencies file for kb_stats.
# This may be replaced when dependencies are built.
