file(REMOVE_RECURSE
  "CMakeFiles/kb_stats.dir/kb_stats.cpp.o"
  "CMakeFiles/kb_stats.dir/kb_stats.cpp.o.d"
  "kb_stats"
  "kb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
