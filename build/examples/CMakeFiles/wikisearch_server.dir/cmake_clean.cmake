file(REMOVE_RECURSE
  "CMakeFiles/wikisearch_server.dir/wikisearch_server.cpp.o"
  "CMakeFiles/wikisearch_server.dir/wikisearch_server.cpp.o.d"
  "wikisearch_server"
  "wikisearch_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikisearch_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
