# Empty dependencies file for wikisearch_server.
# This may be replaced when dependencies are built.
