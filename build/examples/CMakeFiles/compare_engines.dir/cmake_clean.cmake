file(REMOVE_RECURSE
  "CMakeFiles/compare_engines.dir/compare_engines.cpp.o"
  "CMakeFiles/compare_engines.dir/compare_engines.cpp.o.d"
  "compare_engines"
  "compare_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
