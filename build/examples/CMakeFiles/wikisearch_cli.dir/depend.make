# Empty dependencies file for wikisearch_cli.
# This may be replaced when dependencies are built.
