file(REMOVE_RECURSE
  "CMakeFiles/wikisearch_cli.dir/wikisearch_cli.cpp.o"
  "CMakeFiles/wikisearch_cli.dir/wikisearch_cli.cpp.o.d"
  "wikisearch_cli"
  "wikisearch_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikisearch_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
