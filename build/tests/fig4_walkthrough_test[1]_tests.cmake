add_test([=[Fig4WalkthroughTest.StagedExpansionAndMultiPathAnswer]=]  /root/repo/build/tests/fig4_walkthrough_test [==[--gtest_filter=Fig4WalkthroughTest.StagedExpansionAndMultiPathAnswer]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Fig4WalkthroughTest.StagedExpansionAndMultiPathAnswer]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  fig4_walkthrough_test_TESTS Fig4WalkthroughTest.StagedExpansionAndMultiPathAnswer)
