# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/core_weight_test[1]_include.cmake")
include("/root/repo/build/tests/core_search_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/banks_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/blinks_test[1]_include.cmake")
include("/root/repo/build/tests/ntriples_test[1]_include.cmake")
include("/root/repo/build/tests/random_property_test[1]_include.cmake")
include("/root/repo/build/tests/gst_test[1]_include.cmake")
include("/root/repo/build/tests/misc_core_test[1]_include.cmake")
include("/root/repo/build/tests/objectrank_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/graph_stats_test[1]_include.cmake")
include("/root/repo/build/tests/banks_property_test[1]_include.cmake")
include("/root/repo/build/tests/options_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/fig4_walkthrough_test[1]_include.cmake")
include("/root/repo/build/tests/progressive_test[1]_include.cmake")
include("/root/repo/build/tests/extraction_edge_test[1]_include.cmake")
