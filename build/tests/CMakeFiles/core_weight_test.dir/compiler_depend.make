# Empty compiler generated dependencies file for core_weight_test.
# This may be replaced when dependencies are built.
