file(REMOVE_RECURSE
  "CMakeFiles/core_weight_test.dir/core_weight_test.cc.o"
  "CMakeFiles/core_weight_test.dir/core_weight_test.cc.o.d"
  "core_weight_test"
  "core_weight_test.pdb"
  "core_weight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_weight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
