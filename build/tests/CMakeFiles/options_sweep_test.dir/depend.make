# Empty dependencies file for options_sweep_test.
# This may be replaced when dependencies are built.
