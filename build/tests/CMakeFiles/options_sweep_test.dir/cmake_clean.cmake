file(REMOVE_RECURSE
  "CMakeFiles/options_sweep_test.dir/options_sweep_test.cc.o"
  "CMakeFiles/options_sweep_test.dir/options_sweep_test.cc.o.d"
  "options_sweep_test"
  "options_sweep_test.pdb"
  "options_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
