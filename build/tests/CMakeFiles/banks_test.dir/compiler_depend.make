# Empty compiler generated dependencies file for banks_test.
# This may be replaced when dependencies are built.
