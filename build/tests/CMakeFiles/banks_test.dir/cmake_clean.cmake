file(REMOVE_RECURSE
  "CMakeFiles/banks_test.dir/banks_test.cc.o"
  "CMakeFiles/banks_test.dir/banks_test.cc.o.d"
  "banks_test"
  "banks_test.pdb"
  "banks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
