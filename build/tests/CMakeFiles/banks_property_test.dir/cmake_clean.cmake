file(REMOVE_RECURSE
  "CMakeFiles/banks_property_test.dir/banks_property_test.cc.o"
  "CMakeFiles/banks_property_test.dir/banks_property_test.cc.o.d"
  "banks_property_test"
  "banks_property_test.pdb"
  "banks_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banks_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
