# Empty dependencies file for banks_property_test.
# This may be replaced when dependencies are built.
