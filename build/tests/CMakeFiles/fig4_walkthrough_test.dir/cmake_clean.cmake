file(REMOVE_RECURSE
  "CMakeFiles/fig4_walkthrough_test.dir/fig4_walkthrough_test.cc.o"
  "CMakeFiles/fig4_walkthrough_test.dir/fig4_walkthrough_test.cc.o.d"
  "fig4_walkthrough_test"
  "fig4_walkthrough_test.pdb"
  "fig4_walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
