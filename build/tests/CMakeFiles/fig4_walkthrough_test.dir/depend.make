# Empty dependencies file for fig4_walkthrough_test.
# This may be replaced when dependencies are built.
