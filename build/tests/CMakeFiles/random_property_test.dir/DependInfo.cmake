
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/random_property_test.cc" "tests/CMakeFiles/random_property_test.dir/random_property_test.cc.o" "gcc" "tests/CMakeFiles/random_property_test.dir/random_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/ws_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ws_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/banks/CMakeFiles/ws_banks.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/ws_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ws_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ws_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ws_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
