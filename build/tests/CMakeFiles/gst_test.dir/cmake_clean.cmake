file(REMOVE_RECURSE
  "CMakeFiles/gst_test.dir/gst_test.cc.o"
  "CMakeFiles/gst_test.dir/gst_test.cc.o.d"
  "gst_test"
  "gst_test.pdb"
  "gst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
