# Empty dependencies file for gst_test.
# This may be replaced when dependencies are built.
