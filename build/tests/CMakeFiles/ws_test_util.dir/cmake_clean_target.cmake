file(REMOVE_RECURSE
  "libws_test_util.a"
)
