file(REMOVE_RECURSE
  "CMakeFiles/ws_test_util.dir/test_util.cc.o"
  "CMakeFiles/ws_test_util.dir/test_util.cc.o.d"
  "libws_test_util.a"
  "libws_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ws_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
