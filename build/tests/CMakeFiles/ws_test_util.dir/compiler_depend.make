# Empty compiler generated dependencies file for ws_test_util.
# This may be replaced when dependencies are built.
