# Empty dependencies file for objectrank_test.
# This may be replaced when dependencies are built.
