# Empty dependencies file for blinks_test.
# This may be replaced when dependencies are built.
