file(REMOVE_RECURSE
  "CMakeFiles/blinks_test.dir/blinks_test.cc.o"
  "CMakeFiles/blinks_test.dir/blinks_test.cc.o.d"
  "blinks_test"
  "blinks_test.pdb"
  "blinks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blinks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
