# Empty dependencies file for extraction_edge_test.
# This may be replaced when dependencies are built.
