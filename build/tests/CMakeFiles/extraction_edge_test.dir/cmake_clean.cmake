file(REMOVE_RECURSE
  "CMakeFiles/extraction_edge_test.dir/extraction_edge_test.cc.o"
  "CMakeFiles/extraction_edge_test.dir/extraction_edge_test.cc.o.d"
  "extraction_edge_test"
  "extraction_edge_test.pdb"
  "extraction_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extraction_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
