file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_activation.dir/bench_fig3_activation.cc.o"
  "CMakeFiles/bench_fig3_activation.dir/bench_fig3_activation.cc.o.d"
  "bench_fig3_activation"
  "bench_fig3_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
