file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vary_threads_large.dir/bench_fig10_vary_threads_large.cc.o"
  "CMakeFiles/bench_fig10_vary_threads_large.dir/bench_fig10_vary_threads_large.cc.o.d"
  "bench_fig10_vary_threads_large"
  "bench_fig10_vary_threads_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vary_threads_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
