# Empty compiler generated dependencies file for bench_fig10_vary_threads_large.
# This may be replaced when dependencies are built.
