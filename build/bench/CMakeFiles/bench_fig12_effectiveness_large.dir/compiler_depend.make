# Empty compiler generated dependencies file for bench_fig12_effectiveness_large.
# This may be replaced when dependencies are built.
