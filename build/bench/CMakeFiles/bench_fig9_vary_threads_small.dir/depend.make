# Empty dependencies file for bench_fig9_vary_threads_small.
# This may be replaced when dependencies are built.
