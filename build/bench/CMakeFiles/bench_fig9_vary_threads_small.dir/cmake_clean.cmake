file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vary_threads_small.dir/bench_fig9_vary_threads_small.cc.o"
  "CMakeFiles/bench_fig9_vary_threads_small.dir/bench_fig9_vary_threads_small.cc.o.d"
  "bench_fig9_vary_threads_small"
  "bench_fig9_vary_threads_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vary_threads_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
