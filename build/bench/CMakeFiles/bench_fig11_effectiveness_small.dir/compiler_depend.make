# Empty compiler generated dependencies file for bench_fig11_effectiveness_small.
# This may be replaced when dependencies are built.
