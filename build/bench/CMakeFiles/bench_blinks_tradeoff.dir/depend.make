# Empty dependencies file for bench_blinks_tradeoff.
# This may be replaced when dependencies are built.
