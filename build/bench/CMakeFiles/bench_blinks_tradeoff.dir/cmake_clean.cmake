file(REMOVE_RECURSE
  "CMakeFiles/bench_blinks_tradeoff.dir/bench_blinks_tradeoff.cc.o"
  "CMakeFiles/bench_blinks_tradeoff.dir/bench_blinks_tradeoff.cc.o.d"
  "bench_blinks_tradeoff"
  "bench_blinks_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blinks_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
