# Empty dependencies file for bench_fig8_vary_topk_alpha.
# This may be replaced when dependencies are built.
