file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vary_knum_small.dir/bench_fig6_vary_knum_small.cc.o"
  "CMakeFiles/bench_fig6_vary_knum_small.dir/bench_fig6_vary_knum_small.cc.o.d"
  "bench_fig6_vary_knum_small"
  "bench_fig6_vary_knum_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vary_knum_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
