# Empty dependencies file for bench_fig6_vary_knum_small.
# This may be replaced when dependencies are built.
