file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_vary_knum_large.dir/bench_fig7_vary_knum_large.cc.o"
  "CMakeFiles/bench_fig7_vary_knum_large.dir/bench_fig7_vary_knum_large.cc.o.d"
  "bench_fig7_vary_knum_large"
  "bench_fig7_vary_knum_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_vary_knum_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
